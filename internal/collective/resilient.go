package collective

import (
	"fmt"

	"pacc/internal/mpi"
	"pacc/internal/obs"
	"pacc/internal/plan"
	"pacc/internal/power"
)

// This file is the ULFM-style recovery layer of the collective package:
// a generic resilient runner that turns one failure-aware collective body
// into a revoke → agree → shrink → retry loop, plus the two fault-tolerant
// allreduce entry points built on it (an imperative value-carrying chain
// and a plan-backed form that rebuilds, re-verifies and re-executes its
// schedule on the survivor group).

// restorePower is the unconditional post-round power restore: whatever a
// crashed peer left half-done, every survivor leaves the recovery round at
// fmax / T0. Both transitions are free no-ops when the core is already
// there, so healthy rounds pay nothing. Under fault stickfail= the writes
// themselves can be lost; the bounded RecoverPower retry re-issues them so
// a lost transition degrades to a few extra settle periods, not a rank
// permanently wedged at the wrong state.
func restorePower(r *mpi.Rank) {
	r.ScaleUp()
	r.SetThrottle(power.T0)
	if !r.PowerSynced() {
		r.RecoverPower(0)
	}
}

// demoteSuspects is the slow-rank-aware replanning step: census the
// fail-slow suspect set (identical on every member, see
// Comm.AgreeSuspects), let each suspect attempt to heal itself — a lost
// DVFS/throttle write is fixed by re-issuing the transition — and then
// rebuild the communicator with suspects demoted to the minimum-load tail
// positions (plan.DemoteOrder), so the next schedule built over the group
// asks the least of them. Returns comm unchanged when detection is
// disarmed or nobody is suspected; every member must call congruently.
func demoteSuspects(comm *mpi.Comm) *mpi.Comm {
	w := comm.World()
	if !w.FailSlowArmed() {
		return comm
	}
	suspects := comm.AgreeSuspects()
	if len(suspects) == 0 {
		return comm
	}
	r := comm.Owner()
	me := comm.Rank()
	for _, s := range suspects {
		if s == me {
			// Heal what is healable before being demoted: if the only
			// sickness is a stuck power transition, the re-issue clears
			// it and the demotion becomes a one-collective penalty while
			// the lag EWMA decays.
			r.RecoverPower(0)
		}
	}
	if b := w.Obs(); b != nil {
		b.Add(obs.CtrCollectiveDemotions, int64(len(suspects)))
		b.Instant(r.ObsTrack(), "demote suspects", map[string]any{
			"suspects": len(suspects),
		})
	}
	return comm.Sub(plan.DemoteOrder(comm.Size(), suspects))
}

// RunResilient runs body over c with crash-stop and data-corruption
// recovery. Each round every member calls body SPMD; a round whose body
// observes a recoverable error — a failure (mpi.IsFailure) or a detected
// integrity violation (IsIntegrity, e.g. a checked collective's ABFT
// mismatch) — revokes the communicator so peers blocked inside the
// aborted schedule drain out, and every survivor then joins a round
// agreement. The agreement runs after every round — successful or not —
// and carries both the failure census and an abort vote, so ranks whose
// own body completed cleanly still learn that a peer died or caught a
// checksum mismatch mid-round and retry with everyone else instead of
// diverging. After agreement every survivor restores fmax/T0 (a crashed
// peer may have aborted the schedule between a ScaleDown and its matching
// ScaleUp), shrinks the communicator to the survivors, and retries body
// on the new group.
//
// It returns the communicator the successful round ran on (== c when no
// failure happened) and the first non-recoverable error, if any.
// Recoverable errors never escape individually: they are consumed by
// recovery until body succeeds everywhere or the retry budget — one round
// per initial member — is exhausted, in which case the exhaustion error
// wraps the last recoverable error so callers can still classify it
// (mpi.IsFailure / IsIntegrity see through the wrap).
func RunResilient(c *mpi.Comm, body func(*mpi.Comm) error) (*mpi.Comm, error) {
	if c == nil {
		return nil, fmt.Errorf("collective: RunResilient needs a communicator")
	}
	r := c.Owner()
	w := r.World()
	comm := c
	var lastErr error
	for round := 0; round <= c.Size(); round++ {
		err := body(comm)
		if err != nil && !mpi.IsFailure(err) && !IsIntegrity(err) {
			restorePower(r)
			return comm, err
		}
		if err != nil {
			comm.Revoke()
		}
		failed, peerBad := comm.AgreeRound(err != nil)
		restorePower(r)
		if err == nil && len(failed) == 0 && !peerBad {
			// Clean round. With fail-slow detection armed, census the
			// suspect set and hand back a communicator with suspects
			// demoted, so an iterating caller's next collective is built
			// around the gray failure instead of gated by it.
			return demoteSuspects(comm), nil
		}
		if err != nil {
			lastErr = err
		} else if peerBad {
			lastErr = &VerificationError{Op: "resilient round", Peer: true}
		}
		if b := w.Obs(); b != nil {
			b.Add(obs.CtrCollectiveRecoveries, 1)
			b.Instant(r.ObsTrack(), "collective recovery", map[string]any{
				"failed": len(failed), "round": round,
			})
		}
		// Shrink even when the failed set is empty (a revoke with no dead
		// member, or a pure integrity retry): the retry needs an unrevoked
		// communicator either way, and Shrink hands back a fresh one.
		comm = comm.Shrink(failed)
		if comm == nil || comm.Size() == 0 {
			return nil, fmt.Errorf("collective: no survivors to retry on")
		}
		// Replan the retry around any gray-failed survivors: a round that
		// failed because a slow rank stalled the schedule would otherwise
		// retry into the same stall.
		comm = demoteSuspects(comm)
	}
	if lastErr != nil {
		return comm, fmt.Errorf("collective: resilient retry budget exhausted after %d rounds: %w", c.Size()+1, lastErr)
	}
	return comm, fmt.Errorf("collective: resilient retry budget exhausted after %d rounds", c.Size()+1)
}

// allreduceSumChain is one attempt of the value-carrying chain allreduce:
// partial sums flow down the chain to rank 0, the total flows back up.
// Any failure surfaces as a structured error for the resilient runner.
func allreduceSumChain(c *mpi.Comm, bytes int64, v float64, opt Options) (float64, error) {
	out, err := allreduceSumChainRed(c, bytes, redVal{v: v}, opt)
	return out.v, err
}

// allreduceSumChainRed is the chain schedule over redVal: one lane for
// the historical unchecked call, two for the checked variant. Accumulator
// writes and relay buffers pass through the memory-corruption injector.
func allreduceSumChainRed(c *mpi.Comm, bytes int64, a redVal, opt Options) (redVal, error) {
	block := c.TagBlock()
	p, me := c.Size(), c.Rank()
	r := c.Owner()
	sum := corruptRed(r, a)
	if p == 1 {
		return sum, nil
	}
	if me < p-1 {
		x, err := recvRed(c, me+1, bytes, block+me+1, a.checked)
		if err != nil {
			return redVal{checked: a.checked}, err
		}
		reduceOp(c, bytes, opt)
		sum = corruptRed(r, sum.add(x))
	}
	if me > 0 {
		if err := sendRed(c, me-1, bytes, block+me, sum); err != nil {
			return redVal{checked: a.checked}, err
		}
		total, err := recvRed(c, me-1, bytes, block+p+me-1, a.checked)
		if err != nil {
			return redVal{checked: a.checked}, err
		}
		sum = corruptRed(r, total)
	}
	if me < p-1 {
		if err := sendRed(c, me+1, bytes, block+p+me, sum); err != nil {
			return redVal{checked: a.checked}, err
		}
	}
	return sum, nil
}

// AllreduceSumFT is the fault-tolerant allreduce: every member contributes
// v, and the survivors of any crash-stop failures converge on the sum of
// the final group's contributions. It returns that sum, the communicator
// of the successful round (the shrunken survivor group after recovery),
// and the first non-failure error. The schedule is the any-size chain, so
// it keeps working no matter how many ranks recovery removes.
func AllreduceSumFT(c *mpi.Comm, bytes int64, v float64, opt Options) (float64, *mpi.Comm, error) {
	if err := checkBytes("allreduce_ft", bytes); err != nil {
		return 0, c, err
	}
	power := opt.effectivePower(bytes) != NoPower
	var sum float64
	comm, err := RunResilient(c, func(cc *mpi.Comm) error {
		var roundErr error
		timeCollective(cc, opt, "allreduce_ft", bytes, func() {
			if power {
				cc.Owner().ScaleDown()
			}
			sum, roundErr = allreduceSumChain(cc, bytes, v, opt)
			if power {
				// Runs even after a failed chain; if this rank dies before
				// reaching it, RunResilient restores the survivors.
				cc.Owner().ScaleUp()
			}
		})
		return roundErr
	})
	return sum, comm, err
}

// AllreduceFT is the plan-backed fault-tolerant allreduce. Every round
// rebuilds a schedule for the current — possibly shrunken — group,
// re-verifies it against the plan checker, and executes it; a failure
// mid-schedule aborts execution and recovery shrinks and tries again.
// opt.Plan selects the builder as usual, but a forced builder that cannot
// build for the survivor count (recursive doubling on an odd group) falls
// back to cost-based selection over the candidates that still apply.
func AllreduceFT(c *mpi.Comm, bytes int64, opt Options) (*mpi.Comm, error) {
	if err := checkBytes("allreduce_ft_plan", bytes); err != nil {
		return c, err
	}
	return RunResilient(c, func(cc *mpi.Comm) error {
		spec := planSpec(bytes, nil, opt)
		v := viewOf(cc)
		cfg := cc.World().Config()
		name := opt.Plan
		if name == "" || name == PlanAuto {
			sel, err := SelectPlanName(cfg, v, "allreduce", spec, opt.PlanObjective)
			if err != nil {
				return err
			}
			name = sel
		}
		p, err := plan.BuildNamed(name, v, spec)
		if err != nil {
			sel, serr := SelectPlanName(cfg, v, "allreduce", spec, opt.PlanObjective)
			if serr != nil {
				return err
			}
			if p, err = plan.BuildNamed(sel, v, spec); err != nil {
				return err
			}
		}
		if err := plan.Verify(p); err != nil {
			return err
		}
		var execErr error
		timeCollective(cc, opt, "allreduce_ft_plan", bytes, func() { execErr = execPlan(cc, p, opt) })
		return execErr
	})
}
