package collective

import (
	"testing"

	"pacc/internal/mpi"
	"pacc/internal/simtime"
	"pacc/internal/topology"
)

// run launches body on a fresh world and returns elapsed time and total
// cluster energy.
func run(t *testing.T, cfg mpi.Config, body func(r *mpi.Rank)) (simtime.Duration, float64) {
	t.Helper()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(body)
	d, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	return d, w.Station().EnergyJoules()
}

// cfg64 is the paper's testbed: 64 ranks, 8 per node, 8 nodes.
func cfg64() mpi.Config { return mpi.DefaultConfig() }

// cfg32x8 is the 8-way 32-process layout (4 nodes x 8 ranks).
func cfg32x8() mpi.Config {
	c := mpi.DefaultConfig()
	c.NProcs = 32
	c.PPN = 8
	return c
}

// cfg32x4 is the 4-way 32-process layout (8 nodes x 4 ranks).
func cfg32x4() mpi.Config {
	c := mpi.DefaultConfig()
	c.NProcs = 32
	c.PPN = 4
	return c
}

func TestBarrierSynchronizes(t *testing.T) {
	cfg := cfg32x8()
	exit := make([]simtime.Time, cfg.NProcs)
	var maxStart simtime.Time
	run(t, cfg, func(r *mpi.Rank) {
		// Stagger arrivals.
		r.Compute(simtime.Duration(r.ID()) * simtime.Millisecond)
		if r.Now() > maxStart {
			maxStart = r.Now()
		}
		Barrier(mpi.CommWorld(r))
		exit[r.ID()] = r.Now()
	})
	for i, e := range exit {
		if e < maxStart {
			t.Fatalf("rank %d left the barrier at %v before the last arrival %v", i, e, maxStart)
		}
	}
}

func TestBarrierSingleRank(t *testing.T) {
	cfg := cfg64()
	cfg.NProcs = 8
	cfg.PPN = 8
	run(t, cfg, func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		sub := c.Sub([]int{int(r.ID() % 8)})
		if sub != nil {
			Barrier(sub)
		}
	})
}

func TestAlltoallCompletes(t *testing.T) {
	for _, bytes := range []int64{256, 64 << 10} {
		done := 0
		run(t, cfg32x8(), func(r *mpi.Rank) {
			Alltoall(mpi.CommWorld(r), bytes, Options{})
			done++
		})
		if done != 32 {
			t.Fatalf("bytes=%d: %d ranks finished, want 32", bytes, done)
		}
	}
}

// TestAlltoallContention reproduces Figure 2(a)'s mechanism: the same 32
// ranks take substantially longer in the 8-way layout than the 4-way one
// for large messages.
func TestAlltoallContention(t *testing.T) {
	const bytes = 256 << 10
	elapsed := func(cfg mpi.Config) simtime.Duration {
		d, _ := run(t, cfg, func(r *mpi.Rank) {
			AlltoallPairwise(mpi.CommWorld(r), bytes, Options{})
		})
		return d
	}
	d4, d8 := elapsed(cfg32x4()), elapsed(cfg32x8())
	ratio := d8.Seconds() / d4.Seconds()
	if ratio < 1.2 {
		t.Fatalf("8-way/4-way = %.2f, want contention to make 8-way at least 1.2x slower (paper saw ~1.5x)", ratio)
	}
	if ratio > 3.0 {
		t.Fatalf("8-way/4-way = %.2f, implausibly large", ratio)
	}
}

// TestBruckVsPairwiseCrossover: Bruck wins for tiny messages, pairwise for
// large ones.
func TestBruckVsPairwiseCrossover(t *testing.T) {
	elapsed := func(bytes int64, f func(c *mpi.Comm, bytes int64, opt Options) error) simtime.Duration {
		d, _ := run(t, cfg32x8(), func(r *mpi.Rank) {
			f(mpi.CommWorld(r), bytes, Options{})
		})
		return d
	}
	small := int64(64)
	if b, p := elapsed(small, AlltoallBruck), elapsed(small, AlltoallPairwise); b >= p {
		t.Errorf("64B: Bruck (%v) should beat pairwise (%v)", b, p)
	}
	large := int64(512 << 10)
	if b, p := elapsed(large, AlltoallBruck), elapsed(large, AlltoallPairwise); p >= b {
		t.Errorf("512KB: pairwise (%v) should beat Bruck (%v)", p, b)
	}
}

// TestAlltoallPowerModes checks the paper's headline trade-off (Fig 7):
// energy NoPower > FreqScaling > Proposed, with bounded time overhead.
func TestAlltoallPowerModes(t *testing.T) {
	const bytes = 256 << 10
	measure := func(mode PowerMode) (simtime.Duration, float64) {
		return run(t, cfg64(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			for i := 0; i < 2; i++ {
				AlltoallPairwise(c, bytes, Options{Power: mode})
			}
		})
	}
	dNo, eNo := measure(NoPower)
	dFS, eFS := measure(FreqScaling)
	dPr, ePr := measure(Proposed)
	if !(eNo > eFS && eFS > ePr) {
		t.Fatalf("energy ordering violated: no-power %.1f J, freq-scaling %.1f J, proposed %.1f J", eNo, eFS, ePr)
	}
	for name, pair := range map[string][2]simtime.Duration{
		"freq-scaling": {dFS, dNo},
		"proposed":     {dPr, dNo},
	} {
		overhead := pair[0].Seconds()/pair[1].Seconds() - 1
		if overhead < 0 {
			t.Errorf("%s faster than no-power (%.2f%%), unexpected", name, overhead*100)
		}
		if overhead > 0.30 {
			t.Errorf("%s overhead %.1f%%, want <= 30%% (paper: ~10%%)", name, overhead*100)
		}
	}
	savings := 1 - ePr/eNo
	if savings < 0.10 {
		t.Errorf("proposed saves only %.1f%% energy on alltoall, want >= 10%%", savings*100)
	}
}

// TestAlltoallPowerAwareFallback: a 4-way bunch layout leaves socket B
// empty; Proposed must degrade gracefully to the pairwise schedule.
func TestAlltoallPowerAwareFallback(t *testing.T) {
	done := 0
	run(t, cfg32x4(), func(r *mpi.Rank) {
		Alltoall(mpi.CommWorld(r), 128<<10, Options{Power: Proposed})
		done++
	})
	if done != 32 {
		t.Fatalf("%d ranks finished, want 32", done)
	}
}

func TestAlltoallvCompletes(t *testing.T) {
	sizes := func(src, dst int) int64 { return int64(1024 * (1 + (src+dst)%4)) }
	for _, mode := range []PowerMode{NoPower, FreqScaling, Proposed} {
		done := 0
		run(t, cfg32x8(), func(r *mpi.Rank) {
			Alltoallv(mpi.CommWorld(r), sizes, Options{Power: mode})
			done++
		})
		if done != 32 {
			t.Fatalf("mode %v: %d ranks finished", mode, done)
		}
	}
}

// TestAlltoallTraceSeparatesPhases: the proposed algorithm reports its
// four phases, and phases 2+3+4 dominate phase 1 for inter-node-heavy
// layouts (the premise of §V-A).
func TestAlltoallTraceSeparatesPhases(t *testing.T) {
	const bytes = 128 << 10
	traces := make([]*Trace, 64)
	run(t, cfg64(), func(r *mpi.Rank) {
		tr := NewTrace()
		traces[r.ID()] = tr
		Alltoall(mpi.CommWorld(r), bytes, Options{Power: Proposed, Trace: tr})
	})
	tr := traces[0]
	if tr.Phase(PhaseTotal) <= 0 {
		t.Fatal("no total time recorded")
	}
	intra := tr.Phase(PhaseIntra)
	inter := tr.Phase(PhasePhase2) + tr.Phase(PhasePhase3) + tr.Phase(PhasePhase4)
	if intra <= 0 || inter <= 0 {
		t.Fatalf("phases missing: intra=%v inter=%v", intra, inter)
	}
	if inter < 3*intra {
		t.Errorf("inter-node time %v not >> intra %v; paper expects the last P-c steps to dominate", inter, intra)
	}
}

func TestBcastCompletes(t *testing.T) {
	for _, bytes := range []int64{512, 1 << 20} {
		for _, mode := range []PowerMode{NoPower, FreqScaling, Proposed} {
			done := 0
			run(t, cfg64(), func(r *mpi.Rank) {
				Bcast(mpi.CommWorld(r), 0, bytes, Options{Power: mode})
				done++
			})
			if done != 64 {
				t.Fatalf("bytes=%d mode=%v: %d finished", bytes, mode, done)
			}
		}
	}
}

func TestBcastNonLeaderRoot(t *testing.T) {
	done := 0
	run(t, cfg32x8(), func(r *mpi.Rank) {
		Bcast(mpi.CommWorld(r), 5, 64<<10, Options{}) // rank 5 is not a leader
		done++
	})
	if done != 32 {
		t.Fatalf("%d finished", done)
	}
}

// TestBcastNetworkPhaseDominates reproduces Figure 2(b): for large
// messages the inter-leader phase accounts for most of the broadcast.
func TestBcastNetworkPhaseDominates(t *testing.T) {
	traces := make([]*Trace, 64)
	run(t, cfg64(), func(r *mpi.Rank) {
		tr := NewTrace()
		traces[r.ID()] = tr
		Bcast(mpi.CommWorld(r), 0, 1<<20, Options{Trace: tr})
	})
	tr := traces[0] // leader of node 0: sees the real network phase
	total := tr.Phase(PhaseTotal)
	net := tr.Phase(PhaseNetwork)
	if net.Seconds() < 0.5*total.Seconds() {
		t.Fatalf("network phase %v is %.0f%% of total %v; paper expects it to dominate",
			net, 100*net.Seconds()/total.Seconds(), total)
	}
}

// TestBcastPowerModes checks Figure 8's shape: modest time overhead and
// ordered mean power draw (≈2.3 / 1.8 / 1.6 KW in the paper). Iterations
// are barrier-separated like the OSU benchmark loop, so ranks whose part
// of the collective is short stay busy-waiting instead of racing ahead.
func TestBcastPowerModes(t *testing.T) {
	const bytes = 1 << 20
	measure := func(mode PowerMode) (simtime.Duration, float64) {
		d, e := run(t, cfg64(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			for i := 0; i < 4; i++ {
				Barrier(c)
				Bcast(c, 0, bytes, Options{Power: mode})
			}
		})
		return d, e / d.Seconds() // mean watts
	}
	dNo, pNo := measure(NoPower)
	_, pFS := measure(FreqScaling)
	dPr, pPr := measure(Proposed)
	if !(pNo > pFS && pFS > pPr) {
		t.Fatalf("mean power ordering violated: %.0f / %.0f / %.0f W", pNo, pFS, pPr)
	}
	overhead := dPr.Seconds()/dNo.Seconds() - 1
	if overhead > 0.35 {
		t.Errorf("proposed bcast overhead %.1f%%, want <= 35%% (paper: ~15%%)", overhead*100)
	}
}

// TestBcastCoreGranularAblation: core-level throttling must save at least
// as much energy as socket-level without being slower (§V-B prediction).
func TestBcastCoreGranularAblation(t *testing.T) {
	const bytes = 1 << 20
	measure := func(core bool) (simtime.Duration, float64) {
		return run(t, cfg64(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			for i := 0; i < 4; i++ {
				Bcast(c, 0, bytes, Options{Power: Proposed, CoreGranularThrottle: core})
			}
		})
	}
	dSock, eSock := measure(false)
	dCore, eCore := measure(true)
	if eCore > eSock*1.01 {
		t.Errorf("core-granular energy %.1f J above socket-level %.1f J", eCore, eSock)
	}
	if dCore.Seconds() > dSock.Seconds()*1.01 {
		t.Errorf("core-granular time %v above socket-level %v", dCore, dSock)
	}
}

func TestBcastBinomial(t *testing.T) {
	done := 0
	run(t, cfg32x8(), func(r *mpi.Rank) {
		BcastBinomial(mpi.CommWorld(r), 0, 32<<10, Options{})
		done++
	})
	if done != 32 {
		t.Fatalf("%d finished", done)
	}
}

func TestReduceCompletes(t *testing.T) {
	for _, mode := range []PowerMode{NoPower, FreqScaling, Proposed} {
		for _, root := range []int{0, 3} {
			done := 0
			run(t, cfg32x8(), func(r *mpi.Rank) {
				Reduce(mpi.CommWorld(r), root, 16<<10, Options{Power: mode})
				done++
			})
			if done != 32 {
				t.Fatalf("mode=%v root=%d: %d finished", mode, root, done)
			}
		}
	}
}

// TestReduceNetworkPhaseDominates reproduces Figure 2(c)'s premise for
// medium messages.
func TestReduceNetworkPhaseDominates(t *testing.T) {
	traces := make([]*Trace, 64)
	run(t, cfg64(), func(r *mpi.Rank) {
		tr := NewTrace()
		traces[r.ID()] = tr
		Reduce(mpi.CommWorld(r), 0, 4<<10, Options{Trace: tr})
	})
	tr := traces[0]
	net := tr.Phase(PhaseNetwork)
	total := tr.Phase(PhaseTotal)
	if net.Seconds() < 0.4*total.Seconds() {
		t.Fatalf("network %v vs total %v: expected the leader phase to dominate", net, total)
	}
}

func TestReducePowerOrdering(t *testing.T) {
	measure := func(mode PowerMode) float64 {
		d, e := run(t, cfg64(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			for i := 0; i < 4; i++ {
				Barrier(c)
				Reduce(c, 0, 64<<10, Options{Power: mode})
			}
		})
		return e / d.Seconds() // mean watts
	}
	pNo, pFS, pPr := measure(NoPower), measure(FreqScaling), measure(Proposed)
	if !(pNo > pFS && pFS > pPr) {
		t.Fatalf("mean power ordering violated: %.0f / %.0f / %.0f W", pNo, pFS, pPr)
	}
}

func TestReduceBinomial(t *testing.T) {
	done := 0
	run(t, cfg32x8(), func(r *mpi.Rank) {
		ReduceBinomial(mpi.CommWorld(r), 0, 8<<10, Options{})
		done++
	})
	if done != 32 {
		t.Fatalf("%d finished", done)
	}
}

func TestAllgatherVariants(t *testing.T) {
	for name, f := range map[string]func(*mpi.Comm, int64, Options) error{
		"mc":   Allgather,
		"ring": AllgatherRing,
		"rd":   AllgatherRD,
	} {
		done := 0
		run(t, cfg32x8(), func(r *mpi.Rank) {
			f(mpi.CommWorld(r), 4<<10, Options{})
			done++
		})
		if done != 32 {
			t.Fatalf("%s: %d finished", name, done)
		}
	}
}

func TestAllgatherPowerModes(t *testing.T) {
	measure := func(mode PowerMode) float64 {
		_, e := run(t, cfg64(), func(r *mpi.Rank) {
			Allgather(mpi.CommWorld(r), 16<<10, Options{Power: mode})
		})
		return e
	}
	eNo, ePr := measure(NoPower), measure(Proposed)
	if ePr >= eNo {
		t.Fatalf("proposed allgather energy %.1f J not below no-power %.1f J", ePr, eNo)
	}
}

func TestAllreduceVariants(t *testing.T) {
	for _, mode := range []PowerMode{NoPower, FreqScaling, Proposed} {
		done := 0
		run(t, cfg32x8(), func(r *mpi.Rank) {
			Allreduce(mpi.CommWorld(r), 8<<10, Options{Power: mode})
			done++
		})
		if done != 32 {
			t.Fatalf("mode=%v: %d finished", mode, done)
		}
	}
	// Non-power-of-two falls back to reduce+bcast.
	cfg := mpi.DefaultConfig()
	cfg.NProcs = 48
	cfg.PPN = 8
	done := 0
	run(t, cfg, func(r *mpi.Rank) {
		Allreduce(mpi.CommWorld(r), 4<<10, Options{})
		done++
	})
	if done != 48 {
		t.Fatalf("48 ranks: %d finished", done)
	}
}

func TestGatherScatter(t *testing.T) {
	for _, root := range []int{0, 7} {
		done := 0
		run(t, cfg32x8(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			Scatter(c, root, 8<<10, Options{})
			Gather(c, root, 8<<10, Options{})
			done++
		})
		if done != 32 {
			t.Fatalf("root=%d: %d finished", root, done)
		}
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Tag isolation: a sequence of different collectives on the same
	// communicator must not cross-match messages.
	done := 0
	run(t, cfg32x8(), func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		Alltoall(c, 2048, Options{})
		Bcast(c, 0, 2048, Options{})
		Reduce(c, 0, 2048, Options{})
		Barrier(c)
		Allgather(c, 1024, Options{})
		Allreduce(c, 1024, Options{})
		done++
	})
	if done != 32 {
		t.Fatalf("%d finished", done)
	}
}

func TestTournamentPeerProperties(t *testing.T) {
	for _, n := range []int{2, 4, 6, 7, 8, 10, 16} {
		seen := map[[2]int]bool{}
		for round := 1; round <= tournamentRounds(n); round++ {
			for i := 0; i < n; i++ {
				j := tournamentPeer(n, round, i)
				if j == i {
					t.Fatalf("n=%d round=%d: node %d paired with itself", n, round, i)
				}
				if j < 0 {
					if n%2 == 0 {
						t.Fatalf("n=%d round=%d: unexpected bye for %d", n, round, i)
					}
					continue
				}
				if back := tournamentPeer(n, round, j); back != i {
					t.Fatalf("n=%d round=%d: %d->%d but %d->%d (not mutual)", n, round, i, j, j, back)
				}
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				seen[[2]int{a, b}] = true
			}
		}
		// Every unordered pair must meet exactly once across rounds.
		want := n * (n - 1) / 2
		if len(seen) != want {
			t.Fatalf("n=%d: covered %d pairs, want %d", n, len(seen), want)
		}
	}
}

func TestPowerModeString(t *testing.T) {
	if NoPower.String() != "no-power" || FreqScaling.String() != "freq-scaling" ||
		Proposed.String() != "proposed" {
		t.Error("PowerMode strings wrong")
	}
	if PowerMode(9).String() == "" {
		t.Error("unknown mode should format")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", simtime.Second) // must not panic
	if tr.Phase("x") != 0 {
		t.Error("nil trace phase should be 0")
	}
	tr2 := &Trace{}
	tr2.Add("y", simtime.Second)
	if tr2.Phase("y") != simtime.Second {
		t.Error("zero-value trace should accumulate")
	}
}

// TestCollectiveDeterminism: identical runs produce identical times and
// energies.
func TestCollectiveDeterminism(t *testing.T) {
	measure := func() (simtime.Duration, float64) {
		return run(t, cfg32x8(), func(r *mpi.Rank) {
			c := mpi.CommWorld(r)
			Alltoall(c, 64<<10, Options{Power: Proposed})
			Bcast(c, 0, 256<<10, Options{Power: Proposed})
		})
	}
	d1, e1 := measure()
	d2, e2 := measure()
	if d1 != d2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%v, %.6f) vs (%v, %.6f)", d1, e1, d2, e2)
	}
}

// TestRestoredPowerState: collectives must leave cores at fmax/T0.
func TestRestoredPowerState(t *testing.T) {
	cfg := cfg64()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		c := mpi.CommWorld(r)
		Alltoall(c, 128<<10, Options{Power: Proposed})
		Bcast(c, 0, 128<<10, Options{Power: Proposed})
		Reduce(c, 0, 16<<10, Options{Power: Proposed})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NProcs; i++ {
		core := w.Rank(i).Core()
		if core.FreqGHz() != cfg.Power.FMaxGHz {
			t.Fatalf("rank %d left at %.2f GHz", i, core.FreqGHz())
		}
		if core.Throttle() != 0 {
			t.Fatalf("rank %d left at %v", i, core.Throttle())
		}
	}
}

func TestLayoutHelpers(t *testing.T) {
	cfg := cfg64()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		if r.ID() != 0 {
			return
		}
		c := mpi.CommWorld(r)
		lay := layoutOf(c)
		if lay.numNodes() != 8 {
			t.Errorf("nodes = %d", lay.numNodes())
		}
		for i := 0; i < 8; i++ {
			if len(lay.a[i]) != 4 || len(lay.b[i]) != 4 || len(lay.all[i]) != 8 {
				t.Errorf("node %d: |A|=%d |B|=%d |all|=%d", i, len(lay.a[i]), len(lay.b[i]), len(lay.all[i]))
			}
		}
		if indexIn(lay.a[0], 2) != 2 || indexIn(lay.a[0], 99) != -1 {
			t.Error("indexIn wrong")
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Scatter binding puts alternating ranks on each socket.
	cfgS := cfg64()
	cfgS.Bind = topology.BindScatter
	w2, err := mpi.NewWorld(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	w2.Launch(func(r *mpi.Rank) {
		if r.ID() != 0 {
			return
		}
		lay := layoutOf(mpi.CommWorld(r))
		if got := lay.a[0]; len(got) != 4 || got[0] != 0 || got[1] != 2 {
			t.Errorf("scatter-bound socket A ranks = %v", got)
		}
	})
	if _, err := w2.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPowerThresholdPassthrough: below the threshold, power-aware calls
// run the default algorithm at full speed (no DVFS transitions, no
// throttle residue, identical timing).
func TestPowerThresholdPassthrough(t *testing.T) {
	elapsed := func(mode PowerMode, bytes int64) simtime.Duration {
		d, _ := run(t, cfg32x8(), func(r *mpi.Rank) {
			Bcast(mpi.CommWorld(r), 0, bytes, Options{Power: mode})
		})
		return d
	}
	small := int64(DefaultPowerThreshold) - 1
	if a, b := elapsed(NoPower, small), elapsed(Proposed, small); a != b {
		t.Fatalf("below threshold Proposed (%v) must equal NoPower (%v)", b, a)
	}
	// At or above the threshold the schemes diverge.
	big := int64(DefaultPowerThreshold) * 4
	if a, b := elapsed(NoPower, big), elapsed(Proposed, big); a == b {
		t.Fatalf("above threshold Proposed should differ from NoPower (both %v)", a)
	}
}

// TestPowerThresholdOverride: a negative threshold forces the scheme at
// any size; an explicit threshold moves the cutoff.
func TestPowerThresholdOverride(t *testing.T) {
	elapsed := func(opt Options) simtime.Duration {
		d, _ := run(t, cfg32x8(), func(r *mpi.Rank) {
			Bcast(mpi.CommWorld(r), 0, 1024, opt)
		})
		return d
	}
	def := elapsed(Options{})
	forced := elapsed(Options{Power: Proposed, PowerThreshold: -1})
	if forced == def {
		t.Fatal("forced power scheme at 1KB should differ from default")
	}
	raised := elapsed(Options{Power: Proposed, PowerThreshold: 1 << 20})
	if raised != def {
		t.Fatal("raised threshold should pass through at 1KB")
	}
}
