package collective

import (
	"fmt"
	"testing"

	"pacc/internal/mpi"
	"pacc/internal/plan"
	"pacc/internal/power"
)

// syntheticView builds the communicator shape of a bunch-mapped job with
// ppn ranks per node, split evenly across two sockets — the layout the
// power-aware builders assume.
func syntheticView(p, ppn int) plan.View {
	v := plan.View{P: p, NodeOf: make([]int, p), SocketA: make([]bool, p)}
	for r := 0; r < p; r++ {
		v.NodeOf[r] = r / ppn
		v.SocketA[r] = (r % ppn) < ppn/2
	}
	return v
}

// TestAllBuildersVerify holds every registered schedule builder to the
// static invariants at the communicator sizes CI pins: tag/peer matching,
// rendezvous deadlock-freedom, declared data coverage and power balance.
// This is the test the plan-verify CI step runs standalone.
func TestAllBuildersVerify(t *testing.T) {
	sizes := []int{2, 4, 8, 16}
	specs := map[string]plan.Spec{
		"plain":  {Bytes: 64 << 10},
		"dvfs":   {Bytes: 64 << 10, FreqScale: true},
		"phased": {Bytes: 64 << 10, FreqScale: true, Phased: true, DeepT: power.T7},
		"nonuniform": {SizeOf: func(src, dst int) int64 {
			return int64((src+1)*(dst+2)) % 4096
		}},
	}
	for _, b := range plan.Builders() {
		for _, p := range sizes {
			ppn := 8
			if p < 8 {
				ppn = p // single node at tiny sizes
			}
			v := syntheticView(p, ppn)
			for specName, spec := range specs {
				t.Run(fmt.Sprintf("%s/p%d/%s", b.Name, p, specName), func(t *testing.T) {
					pl, err := b.Build(v, spec)
					if err != nil {
						// Builders may reject shapes they do not support
						// (per-pair sizes, non-power-of-two); that must be
						// an explicit error, never a bad plan.
						t.Skipf("builder declined: %v", err)
					}
					if err := plan.Verify(pl); err != nil {
						t.Fatalf("built plan fails verification: %v", err)
					}
					if pl.P != p {
						t.Fatalf("plan built for %d ranks, want %d", pl.P, p)
					}
				})
			}
		}
	}
}

// TestBuildersRejectUnsupportedShapes pins the explicit-error contract for
// the shapes builders cannot serve.
func TestBuildersRejectUnsupportedShapes(t *testing.T) {
	nonPow2 := syntheticView(6, 3)
	uniform := plan.Spec{Bytes: 1024}
	for _, name := range []string{"allgather_rd", "allreduce_rd"} {
		if _, err := plan.BuildNamed(name, nonPow2, uniform); err == nil {
			t.Errorf("%s accepted a non-power-of-two communicator", name)
		}
	}
	perPair := plan.Spec{SizeOf: func(src, dst int) int64 { return 1 }}
	for _, name := range []string{"allgather_ring", "allgather_rd", "allreduce_rd", "bcast_binomial", "alltoall_bruck"} {
		if _, err := plan.BuildNamed(name, syntheticView(4, 4), perPair); err == nil {
			t.Errorf("%s accepted per-pair sizes", name)
		}
	}
	if _, err := plan.BuildNamed("bcast_binomial", syntheticView(4, 4), plan.Spec{Bytes: 1, Root: 9}); err == nil {
		t.Error("bcast_binomial accepted an out-of-range root")
	}
}

// TestPhasedBuilderFallsBackToPairwise: nodes without a populated,
// equal-size second socket get the pairwise schedule under the phased
// name, exactly like the imperative form.
func TestPhasedBuilderFallsBackToPairwise(t *testing.T) {
	v := plan.View{P: 4, NodeOf: []int{0, 0, 1, 1}, SocketA: []bool{true, true, true, true}}
	pl, err := plan.BuildNamed("alltoall_phased", v, plan.Spec{Bytes: 4096, FreqScale: true, Phased: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Name != "alltoall_phased" {
		t.Errorf("fallback plan named %q", pl.Name)
	}
	if err := plan.Verify(pl); err != nil {
		t.Fatalf("fallback plan fails verification: %v", err)
	}
	// The fallback must not contain any throttle steps.
	for r, steps := range pl.Steps {
		for i, s := range steps {
			if s.Op == plan.OpPower && s.Power.Kind == plan.PowerThrottle {
				t.Fatalf("rank %d step %d: fallback schedule throttles", r, i)
			}
		}
	}
}

// TestSelectPlanName: the cost model must prefer Bruck for tiny payloads
// and pairwise for large ones on the default testbed shape, reproducing
// the message-size switchover as data.
func TestSelectPlanName(t *testing.T) {
	cfg := mpi.DefaultConfig()
	v := syntheticView(16, 8)
	small, err := SelectPlanName(cfg, v, "alltoall", plan.Spec{Bytes: 64}, SelectByLatency)
	if err != nil {
		t.Fatal(err)
	}
	if small != "alltoall_bruck" {
		t.Errorf("64B alltoall selected %q, want alltoall_bruck", small)
	}
	large, err := SelectPlanName(cfg, v, "alltoall", plan.Spec{Bytes: 1 << 20}, SelectByLatency)
	if err != nil {
		t.Fatal(err)
	}
	if large == "alltoall_bruck" {
		t.Errorf("1MB alltoall selected %q, want a non-Bruck schedule", large)
	}
	if _, err := SelectPlanName(cfg, v, "no-such-family", plan.Spec{Bytes: 1}, SelectByLatency); err == nil {
		t.Error("unknown family accepted")
	}
}
