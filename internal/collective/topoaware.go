package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/power"
)

// Topology-aware collectives implement the direction sketched in the
// paper's conclusion (§VIII, after [27]): on multi-rack clusters, route
// collectives through per-rack leaders so only one process per rack
// crosses the oversubscribed inter-rack links — and, for the power-aware
// variants, throttle every process in a rack down while its rack leader
// handles the inter-rack phase ("throttling down all the processes in a
// rack, during the inter-rack communication phases").
//
// The hierarchy is root -> rack leaders -> node leaders -> local ranks;
// the last hop uses the shared-memory region like the §V-B collectives.

// rackLayout extends commLayout with the rack grouping from the fabric
// configuration.
type rackLayout struct {
	lay *commLayout
	// rackOfNodeIdx maps a node index (in lay) to its rack id.
	rackOfNodeIdx []int
	// racks lists rack ids in first-appearance order; nodeIdxsOf lists
	// the node indices of each rack.
	racks      []int
	nodeIdxsOf map[int][]int
}

func rackLayoutOf(c *mpi.Comm) *rackLayout {
	lay := layoutOf(c)
	fab := c.World().Fabric()
	rl := &rackLayout{lay: lay, nodeIdxsOf: map[int][]int{}}
	seen := map[int]bool{}
	for idx, node := range lay.nodes {
		rk := fab.RackOf(node)
		rl.rackOfNodeIdx = append(rl.rackOfNodeIdx, rk)
		if !seen[rk] {
			seen[rk] = true
			rl.racks = append(rl.racks, rk)
		}
		rl.nodeIdxsOf[rk] = append(rl.nodeIdxsOf[rk], idx)
	}
	return rl
}

// rackLeader returns the comm rank leading a rack: the node leader of the
// rack's first node.
func (rl *rackLayout) rackLeader(rack int) int {
	return rl.lay.all[rl.nodeIdxsOf[rack][0]][0]
}

// ranksInRack counts communicator ranks in a rack.
func (rl *rackLayout) ranksInRack(rack int) int {
	n := 0
	for _, idx := range rl.nodeIdxsOf[rack] {
		n += len(rl.lay.all[idx])
	}
	return n
}

// ScatterTopoAware distributes a distinct block of bytes from root to
// every rank through the rack hierarchy. With Options.Power == Proposed,
// every non-rack-leader waits fully throttled (DeepThrottle) until its
// data arrives, the §VIII power schedule; FreqScaling applies per-call
// DVFS only.
func ScatterTopoAware(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("scatter_topo", bytes); err != nil {
		return err
	}
	if err := checkRoot("scatter_topo", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "scatter_topo", bytes, func() {
		if fallbackToFlat(c, "scatter_topo") {
			inner := opt
			inner.Trace = nil
			Scatter(c, root, bytes, inner)
			return
		}
		switch opt.Power {
		case Proposed:
			withFreqScaling(c, func() { scatterTopo(c, root, bytes, opt, true) })
		case FreqScaling:
			withFreqScaling(c, func() { scatterTopo(c, root, bytes, opt, false) })
		default:
			scatterTopo(c, root, bytes, opt, false)
		}
	})
	return nil
}

func scatterTopo(c *mpi.Comm, root int, bytes int64, opt Options, throttle bool) {
	r := c.Owner()
	me := c.Rank()
	if c.Size() == 1 {
		return
	}
	rl := rackLayoutOf(c)
	lay := rl.lay
	block := c.TagBlock()
	myNodeIdx := lay.idxOfNode[c.NodeOf(me)]
	myRack := rl.rackOfNodeIdx[myNodeIdx]
	nodeLeader := lay.all[myNodeIdx][0]
	rackLeader := rl.rackLeader(myRack)
	rootRack := rl.rackOfNodeIdx[lay.idxOfNode[c.NodeOf(root)]]

	// The §VIII schedule: everyone except the root and the rack leaders
	// drops to the deep throttle state until released by its data.
	if throttle && me != root && me != rackLeader {
		r.SetThrottle(opt.deepT())
	}

	// Phase 1 (inter-rack): root ships each rack's aggregate block to
	// the rack leader.
	timePhase(c, opt.Trace, PhaseNetwork, func() {
		if me == root {
			for _, rk := range rl.racks {
				dst := rl.rackLeader(rk)
				if dst == root {
					// The root's own rack block is already in
					// place in its send buffer.
					continue
				}
				size := int64(rl.ranksInRack(rk)) * bytes
				c.Send(dst, size, c.PairTag(block, me, dst))
			}
		}
		if me == rackLeader && me != root {
			size := int64(rl.ranksInRack(myRack)) * bytes
			c.Recv(root, size, c.PairTag(block, root, me))
		}
		_ = rootRack
	})

	// Phase 2 (intra-rack, inter-node): the rack leader ships each
	// node's block to the node leader.
	if me == rackLeader {
		for _, idx := range rl.nodeIdxsOf[myRack] {
			dst := lay.all[idx][0]
			if dst == me {
				continue // own node block already staged
			}
			size := int64(len(lay.all[idx])) * bytes
			c.Send(dst, size, c.PairTag(block, me, dst))
		}
	}
	if me == nodeLeader && me != rackLeader {
		size := int64(len(lay.all[myNodeIdx])) * bytes
		c.Recv(rackLeader, size, c.PairTag(block, rackLeader, me))
		if throttle {
			r.SetThrottle(power.T0)
		}
	}

	// Phase 3 (intra-node): the node leader publishes the node block in
	// the shared region; local ranks copy out their own slice.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if me == nodeLeader {
			localCopy(c, int64(len(lay.all[myNodeIdx]))*bytes)
			for _, lr := range lay.all[myNodeIdx] {
				if lr != me {
					c.Send(lr, 0, ctrlTag(block, lr))
				}
			}
		} else {
			c.Recv(nodeLeader, 0, ctrlTag(block, me))
			if throttle {
				r.SetThrottle(power.T0)
			}
			localCopy(c, bytes)
		}
	})
}

// BcastTopoAware broadcasts bytes from root through the rack hierarchy:
// root to rack leaders (inter-rack), rack leaders to node leaders
// (intra-rack), node leaders to local ranks via shared memory. With
// Proposed, every non-rack-leader waits fully throttled until its copy
// arrives.
func BcastTopoAware(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("bcast_topo", bytes); err != nil {
		return err
	}
	if err := checkRoot("bcast_topo", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "bcast_topo", bytes, func() {
		if fallbackToFlat(c, "bcast_topo") {
			inner := opt
			inner.Trace = nil
			Bcast(c, root, bytes, inner)
			return
		}
		switch opt.Power {
		case Proposed:
			withFreqScaling(c, func() { bcastTopo(c, root, bytes, opt, true) })
		case FreqScaling:
			withFreqScaling(c, func() { bcastTopo(c, root, bytes, opt, false) })
		default:
			bcastTopo(c, root, bytes, opt, false)
		}
	})
	return nil
}

func bcastTopo(c *mpi.Comm, root int, bytes int64, opt Options, throttle bool) {
	r := c.Owner()
	me := c.Rank()
	if c.Size() == 1 {
		return
	}
	rl := rackLayoutOf(c)
	lay := rl.lay
	block := c.TagBlock()
	myNodeIdx := lay.idxOfNode[c.NodeOf(me)]
	myRack := rl.rackOfNodeIdx[myNodeIdx]
	nodeLeader := lay.all[myNodeIdx][0]
	rackLeader := rl.rackLeader(myRack)

	if throttle && me != root && me != rackLeader {
		r.SetThrottle(opt.deepT())
	}

	// Phase 1 (inter-rack): root to rack leaders, full payload each.
	timePhase(c, opt.Trace, PhaseNetwork, func() {
		if me == root {
			for _, rk := range rl.racks {
				dst := rl.rackLeader(rk)
				if dst != root {
					c.Send(dst, bytes, c.PairTag(block, me, dst))
				}
			}
		}
		if me == rackLeader && me != root {
			c.Recv(root, bytes, c.PairTag(block, root, me))
		}
	})

	// Phase 2 (intra-rack): rack leader to node leaders.
	if me == rackLeader {
		for _, idx := range rl.nodeIdxsOf[myRack] {
			dst := lay.all[idx][0]
			if dst != me {
				c.Send(dst, bytes, c.PairTag(block, me, dst))
			}
		}
	}
	if me == nodeLeader && me != rackLeader {
		c.Recv(rackLeader, bytes, c.PairTag(block, rackLeader, me))
		if throttle {
			r.SetThrottle(power.T0)
		}
	}

	// Phase 3 (intra-node): publish through the shared region.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if me == nodeLeader {
			localCopy(c, bytes)
			for _, lr := range lay.all[myNodeIdx] {
				if lr != me {
					c.Send(lr, 0, ctrlTag(block, lr))
				}
			}
		} else {
			c.Recv(nodeLeader, 0, ctrlTag(block, me))
			if throttle {
				r.SetThrottle(power.T0)
			}
			localCopy(c, bytes)
		}
	})
}

// GatherTopoAware collects a distinct block of bytes from every rank onto
// root through the rack hierarchy (node leader gathers via shared memory,
// rack leader gathers node blocks, root gathers rack blocks). With
// Proposed, ranks that have delivered their contribution wait fully
// throttled until the root confirms completion, then restore T0.
func GatherTopoAware(c *mpi.Comm, root int, bytes int64, opt Options) error {
	if err := checkBytes("gather_topo", bytes); err != nil {
		return err
	}
	if err := checkRoot("gather_topo", root, c.Size()); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "gather_topo", bytes, func() {
		if fallbackToFlat(c, "gather_topo") {
			inner := opt
			inner.Trace = nil
			Gather(c, root, bytes, inner)
			return
		}
		switch opt.Power {
		case Proposed:
			withFreqScaling(c, func() { gatherTopo(c, root, bytes, opt, true) })
		case FreqScaling:
			withFreqScaling(c, func() { gatherTopo(c, root, bytes, opt, false) })
		default:
			gatherTopo(c, root, bytes, opt, false)
		}
	})
	return nil
}

func gatherTopo(c *mpi.Comm, root int, bytes int64, opt Options, throttle bool) {
	r := c.Owner()
	me := c.Rank()
	if c.Size() == 1 {
		return
	}
	rl := rackLayoutOf(c)
	lay := rl.lay
	block := c.TagBlock()
	myNodeIdx := lay.idxOfNode[c.NodeOf(me)]
	myRack := rl.rackOfNodeIdx[myNodeIdx]
	nodeLeader := lay.all[myNodeIdx][0]
	rackLeader := rl.rackLeader(myRack)

	// Phase 1 (intra-node): locals deposit blocks in the shared region.
	timePhase(c, opt.Trace, PhaseIntra, func() {
		if me != nodeLeader {
			localCopy(c, bytes)
			c.Send(nodeLeader, 0, ctrlTag(block, me))
			if throttle {
				r.SetThrottle(opt.deepT())
			}
		} else {
			for _, lr := range lay.all[myNodeIdx] {
				if lr != me {
					c.Recv(lr, 0, ctrlTag(block, lr))
					localCopy(c, bytes)
				}
			}
		}
	})

	// Phase 2: node leaders ship node blocks to the rack leader.
	if me == nodeLeader && me != rackLeader {
		size := int64(len(lay.all[myNodeIdx])) * bytes
		c.Send(rackLeader, size, c.PairTag(block, me, rackLeader))
		if throttle {
			r.SetThrottle(opt.deepT())
		}
	}
	if me == rackLeader {
		for _, idx := range rl.nodeIdxsOf[myRack] {
			src := lay.all[idx][0]
			if src == me {
				continue
			}
			c.Recv(src, int64(len(lay.all[idx]))*bytes, c.PairTag(block, src, me))
		}
	}

	// Phase 3 (inter-rack): rack leaders ship rack blocks to the root.
	timePhase(c, opt.Trace, PhaseNetwork, func() {
		if me == rackLeader && me != root {
			c.Send(root, int64(rl.ranksInRack(myRack))*bytes, c.PairTag(block, me, root))
			if throttle {
				r.SetThrottle(opt.deepT())
			}
		}
		if me == root {
			for _, rk := range rl.racks {
				src := rl.rackLeader(rk)
				if src == me {
					continue
				}
				c.Recv(src, int64(rl.ranksInRack(rk))*bytes, c.PairTag(block, src, me))
			}
		}
	})

	// Release cascade: with throttling, the root confirms completion to
	// the rack leaders, which release node leaders, which release the
	// locals ("throttled up at the end" — §V-B applied rack-wide).
	if !throttle {
		return
	}
	release := func(to int, k int) { c.Send(to, 0, ctrlTag(block, (1<<12)+k)) }
	await := func(from int, k int) {
		c.Recv(from, 0, ctrlTag(block, (1<<12)+k))
		r.SetThrottle(power.T0)
	}
	switch {
	case me == root:
		for _, rk := range rl.racks {
			if dst := rl.rackLeader(rk); dst != me {
				release(dst, dst)
			}
		}
		// Root also releases its own node/rack subordinates below.
		fallthrough
	case me == rackLeader:
		if me != root {
			await(root, me)
		}
		for _, idx := range rl.nodeIdxsOf[myRack] {
			if dst := lay.all[idx][0]; dst != me {
				release(dst, dst)
			}
		}
		fallthrough
	case me == nodeLeader:
		if me != rackLeader {
			await(rackLeader, me)
		}
		for _, lr := range lay.all[myNodeIdx] {
			if lr != me {
				release(lr, lr)
			}
		}
	default:
		await(nodeLeader, me)
	}
}
