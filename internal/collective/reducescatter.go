package collective

import (
	"pacc/internal/mpi"
)

// ReduceScatter reduces a P-block vector across all ranks and leaves
// block i on rank i, using recursive halving for power-of-two
// communicators (each round exchanges half the remaining vector) and a
// pairwise fallback otherwise. blockBytes is the size of one block.
func ReduceScatter(c *mpi.Comm, blockBytes int64, opt Options) error {
	if err := checkBytes("reduce_scatter", blockBytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(blockBytes)
	timeCollective(c, opt, "reduce_scatter", blockBytes, func() {
		run := func() { reduceScatter(c, blockBytes, opt) }
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return nil
}

func reduceScatter(c *mpi.Comm, blockBytes int64, opt Options) {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	block := c.TagBlock()
	if isPow2(n) {
		// Recursive halving: the exchanged volume halves each round,
		// starting at half the full vector.
		vol := int64(n) / 2 * blockBytes
		round := 0
		for mask := n / 2; mask >= 1; mask >>= 1 {
			peer := me ^ mask
			tag := c.PairTag(block, me, peer) + (1<<17)*round
			c.Exchange(peer, vol, tag, peer, vol, tag)
			reduceOp(c, vol, opt)
			vol /= 2
			round++
		}
		return
	}
	// Non-power-of-two: pairwise exchange of single blocks; every rank
	// receives and folds one block from every peer.
	for i := 1; i < n; i++ {
		to := (me + i) % n
		from := (me - i + n) % n
		tag := c.PairTag(block, 0, 0) + (1 << 17) + i
		c.Exchange(to, blockBytes, tag+me, from, blockBytes, tag+from)
		reduceOp(c, blockBytes, opt)
	}
}

// AllreduceRabenseifner runs the Rabenseifner algorithm [23]: a
// reduce-scatter (recursive halving) followed by an allgather (recursive
// doubling). For large vectors it moves ~2x less data per rank than
// recursive doubling, the classic bandwidth-optimal trade.
func AllreduceRabenseifner(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("allreduce_rabenseifner", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "allreduce_rabenseifner", bytes, func() {
		n := c.Size()
		if n == 1 {
			return
		}
		if !isPow2(n) {
			// The classic formulation needs a power of two; fall
			// back to the composition.
			inner := opt
			inner.Trace = nil
			Reduce(c, 0, bytes, inner)
			Bcast(c, 0, bytes, inner)
			return
		}
		run := func() {
			blockBytes := (bytes + int64(n) - 1) / int64(n)
			reduceScatter(c, blockBytes, opt)
			recursiveDoublingAllgather(c, blockBytes, c.TagBlock())
		}
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return nil
}

// AlltoallRing runs the store-and-forward ring alltoall: every step each
// rank forwards to its right neighbor the blocks that have not reached
// their destination yet ((n-s) blocks at step s). Each block travels hop
// by hop, so total traffic is ~n/2 times the pairwise schedule's — the
// ring trades bandwidth for nearest-neighbor-only communication and
// minimal buffering, which is why systems use it only under memory or
// torus-wiring constraints.
func AlltoallRing(c *mpi.Comm, bytes int64, opt Options) error {
	if err := checkBytes("alltoall_ring", bytes); err != nil {
		return err
	}
	opt.Power = opt.effectivePower(bytes)
	timeCollective(c, opt, "alltoall_ring", bytes, func() {
		run := func() { alltoallRing(c, bytes, opt) }
		if opt.Power == FreqScaling || opt.Power == Proposed {
			withFreqScaling(c, run)
			return
		}
		run()
	})
	return nil
}

func alltoallRing(c *mpi.Comm, bytes int64, opt Options) {
	n, me := c.Size(), c.Rank()
	localCopy(c, bytes)
	if n == 1 {
		return
	}
	block := c.TagBlock()
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for s := 1; s < n; s++ {
		vol := int64(n-s) * bytes
		tag := block + s
		c.Exchange(right, vol, tag, left, vol, tag)
		// Drop off the block that just arrived home.
		localCopy(c, bytes)
	}
}
