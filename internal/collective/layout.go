package collective

import (
	"pacc/internal/mpi"
	"pacc/internal/shm"
	"pacc/internal/simtime"
	"pacc/internal/topology"
)

// commLayout is the node/socket structure of a communicator, precomputed
// once per collective call.
type commLayout struct {
	nodes     []int       // node ids in first-appearance order
	idxOfNode map[int]int // node id -> index into nodes
	all       [][]int     // per node index: comm ranks on that node, ascending
	a, b      [][]int     // per node index: comm ranks on socket A / B, ascending
}

func layoutOf(c *mpi.Comm) *commLayout {
	l := &commLayout{idxOfNode: map[int]int{}}
	for cr := 0; cr < c.Size(); cr++ {
		n := c.NodeOf(cr)
		idx, ok := l.idxOfNode[n]
		if !ok {
			idx = len(l.nodes)
			l.idxOfNode[n] = idx
			l.nodes = append(l.nodes, n)
			l.all = append(l.all, nil)
			l.a = append(l.a, nil)
			l.b = append(l.b, nil)
		}
		l.all[idx] = append(l.all[idx], cr)
		if c.SocketOf(cr) == topology.SocketA {
			l.a[idx] = append(l.a[idx], cr)
		} else {
			l.b[idx] = append(l.b[idx], cr)
		}
	}
	return l
}

// numNodes returns the number of distinct nodes in the communicator.
func (l *commLayout) numNodes() int { return len(l.nodes) }

// indexIn returns the position of cr within group, or -1.
func indexIn(group []int, cr int) int {
	for i, g := range group {
		if g == cr {
			return i
		}
	}
	return -1
}

// localCopy charges the cost of one full-speed memcpy of the given size,
// stretched by the calling core's streaming-copy slowdown (used for
// self-blocks, buffer rotations, and shared-region traffic).
func localCopy(c *mpi.Comm, bytes int64) {
	if bytes <= 0 {
		return
	}
	c.Owner().MemCopy(bytes)
}

func shmCopyAtFullSpeed(c *mpi.Comm, bytes int64) simtime.Duration {
	return c.World().Config().Shm.CopyTime(bytes, 1.0)
}

// shmConfig is a convenience accessor.
func shmConfig(c *mpi.Comm) shm.Config { return c.World().Config().Shm }

// tournamentRounds returns the number of rounds needed for every pair of
// n participants to meet exactly once: n-1 when n is even, n (with one
// bye per round) when n is odd.
func tournamentRounds(n int) int {
	if n < 2 {
		return 0
	}
	if n%2 == 0 {
		return n - 1
	}
	return n
}

// tournamentPeer returns the participant paired with i in the given round
// (1..tournamentRounds(n)) of a round-robin tournament, or -1 when i sits
// out (odd n). The pairing is mutual — tournamentPeer(n, r, j) == i
// whenever tournamentPeer(n, r, i) == j — which is what lets blocking
// pairwise exchanges proceed without deadlock. Power-of-two n uses XOR
// pairing (the hypercube schedule); other sizes the circle method.
func tournamentPeer(n, round, i int) int {
	if n < 2 {
		return -1
	}
	if isPow2(n) {
		return i ^ round
	}
	if n%2 == 1 {
		// Circle method over n participants, one bye per round: pair
		// i with j when i+j ≡ round (mod n), i == j meaning a bye.
		j := (round - i%n + 2*n) % n
		if j == i {
			return -1
		}
		return j
	}
	// Even non-power-of-two: fix participant n-1, rotate the rest.
	m := n - 1
	if i == m {
		// Partner is the x with 2x ≡ round (mod m).
		for x := 0; x < m; x++ {
			if (2*x)%m == round%m {
				return x
			}
		}
		return -1
	}
	if (2*i)%m == round%m {
		return m
	}
	return (round - i%m + 2*m) % m
}
