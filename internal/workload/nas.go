package workload

import (
	"fmt"
	"math"
)

// FTClass parameterizes the NAS FT (3-D FFT PDE solver) kernel.
type FTClass struct {
	// Name is the NAS class letter.
	Name string
	// Nx, Ny, Nz is the grid.
	Nx, Ny, Nz int
	// Iters is the number of time steps.
	Iters int
	// WorkFactor scales the per-iteration flop count relative to the
	// 5·N·log2(N) FFT baseline, covering the evolve and checksum
	// passes of the real kernel. Calibrated against Table II.
	WorkFactor float64
}

// NAS FT problem classes (NPB 3.x definitions).
var (
	FTClassA = FTClass{Name: "A", Nx: 256, Ny: 256, Nz: 128, Iters: 6, WorkFactor: 1.4}
	FTClassB = FTClass{Name: "B", Nx: 512, Ny: 256, Nz: 256, Iters: 20, WorkFactor: 1.4}
	FTClassC = FTClass{Name: "C", Nx: 512, Ny: 512, Nz: 512, Iters: 20, WorkFactor: 1.4}
)

// Points returns the total grid size.
func (c FTClass) Points() float64 { return float64(c.Nx) * float64(c.Ny) * float64(c.Nz) }

// FT builds the NAS FT skeleton: each iteration evolves the spectrum,
// performs the distributed 3-D FFT whose transpose is one large-message
// MPI_Alltoall over the full complex grid, and reduces a checksum. This
// is the structure whose alltoall dominates communication in Figure 10(a).
func FT(class FTClass) App {
	return App{
		Name: "ft." + class.Name,
		Body: func(x *Ctx) {
			p := x.C.Size()
			points := class.Points()
			gridBytes := int64(points) * 16 // complex128
			perPair := gridBytes / int64(p) / int64(p)
			flopsPerIter := class.WorkFactor * 5 * points * math.Log2(points)

			// Initial forward FFT (one transpose) and warm-up.
			x.ComputeFlops(flopsPerIter)
			x.Alltoall(perPair)
			for i := 0; i < class.Iters; i++ {
				x.ComputeFlops(flopsPerIter)
				x.Alltoall(perPair)
				// Checksum: one complex number reduced to all.
				x.Allreduce(16)
			}
		},
	}
}

// ISClass parameterizes the NAS IS (integer sort) kernel.
type ISClass struct {
	Name string
	// Keys is the total number of 4-byte keys.
	Keys int64
	// Buckets is the histogram size exchanged by allreduce.
	Buckets int
	// Iters is the number of ranking iterations.
	Iters int
	// OpsPerKey calibrates the per-iteration compute (bucket counting
	// plus ranking) against Table II.
	OpsPerKey float64
}

// NAS IS problem classes. Iters covers the 10 ranking iterations plus
// the equally expensive full key redistribution and verification passes,
// folded into uniform iterations for the skeleton; the total lands on
// Table II's measured energies.
var (
	ISClassA = ISClass{Name: "A", Keys: 1 << 23, Buckets: 1 << 10, Iters: 20, OpsPerKey: 36}
	ISClassB = ISClass{Name: "B", Keys: 1 << 25, Buckets: 1 << 10, Iters: 20, OpsPerKey: 36}
	ISClassC = ISClass{Name: "C", Keys: 1 << 27, Buckets: 1 << 10, Iters: 20, OpsPerKey: 36}
)

// IS builds the NAS IS skeleton: each iteration computes a local bucket
// histogram, allreduces it, and redistributes keys with MPI_Alltoallv
// (bulk volume Keys*4 bytes, roughly uniform across pairs); a final pass
// ranks the received keys. IS is the kernel where the paper observes ~8%
// energy savings (Table II).
func IS(class ISClass) App {
	return App{
		Name: "is." + class.Name,
		Body: func(x *Ctx) {
			p := x.C.Size()
			perPair := class.Keys * 4 / int64(p) / int64(p)
			sizes := func(src, dst int) int64 {
				// Slight deterministic imbalance, as random keys
				// produce in practice.
				return perPair + perPair/16*int64((src+dst)%3-1)
			}
			flopsPerIter := class.OpsPerKey * float64(class.Keys)
			for i := 0; i < class.Iters; i++ {
				x.ComputeFlops(flopsPerIter)
				x.Allreduce(int64(class.Buckets) * 8)
				x.Alltoallv(sizes)
			}
			// Full sort of received keys and verification.
			x.ComputeFlops(2 * flopsPerIter)
			x.Allreduce(8)
		},
	}
}

// NASApp looks up a kernel by its NPB name ("ft.C", "is.B", ...).
func NASApp(name string) (App, error) {
	switch name {
	case "ft.A":
		return FT(FTClassA), nil
	case "ft.B":
		return FT(FTClassB), nil
	case "ft.C":
		return FT(FTClassC), nil
	case "is.A":
		return IS(ISClassA), nil
	case "is.B":
		return IS(ISClassB), nil
	case "is.C":
		return IS(ISClassC), nil
	default:
		return App{}, fmt.Errorf("workload: unknown NAS kernel %q", name)
	}
}
