package workload

import (
	"testing"

	"pacc/internal/collective"
)

func TestClusterFor(t *testing.T) {
	cfg64, err := ClusterFor(64)
	if err != nil {
		t.Fatal(err)
	}
	if cfg64.Topo.Nodes != 8 || cfg64.PPN != 8 {
		t.Fatalf("64p config: %d nodes, ppn %d", cfg64.Topo.Nodes, cfg64.PPN)
	}
	cfg32, err := ClusterFor(32)
	if err != nil {
		t.Fatal(err)
	}
	if cfg32.Topo.Nodes != 4 || cfg32.PPN != 8 {
		t.Fatalf("32p config: %d nodes, ppn %d", cfg32.Topo.Nodes, cfg32.PPN)
	}
	for _, bad := range []int{0, -8, 12, 128} {
		if _, err := ClusterFor(bad); err == nil {
			t.Errorf("ClusterFor(%d) accepted", bad)
		}
	}
}

func TestNASAppLookup(t *testing.T) {
	for _, name := range []string{"ft.A", "ft.B", "ft.C", "is.A", "is.B", "is.C"} {
		app, err := NASApp(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if app.Name != name {
			t.Errorf("%s: got name %q", name, app.Name)
		}
	}
	if _, err := NASApp("cg.C"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestCPMDDatasetLookup(t *testing.T) {
	if len(CPMDDatasets()) != 3 {
		t.Fatal("expected three datasets")
	}
	if _, err := CPMDDatasetByName("wat-32-inp-1"); err != nil {
		t.Error(err)
	}
	if _, err := CPMDDatasetByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// runSmall runs an app at 16 procs (2 nodes) to keep tests fast.
func runSmall(t *testing.T, app App, mode collective.PowerMode) Report {
	t.Helper()
	cfg, err := ClusterFor(16)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(app, cfg, mode)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFTClassARuns(t *testing.T) {
	rep := runSmall(t, FT(FTClassA), collective.NoPower)
	if rep.Elapsed <= 0 || rep.EnergyJ <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.AlltoallTime <= 0 {
		t.Fatal("FT must spend time in alltoall")
	}
	if rep.AlltoallTime >= rep.Elapsed {
		t.Fatal("alltoall time exceeds elapsed")
	}
	if rep.CommTime < rep.AlltoallTime {
		t.Fatal("comm time must include alltoall time")
	}
}

func TestISClassARuns(t *testing.T) {
	rep := runSmall(t, IS(ISClassA), collective.NoPower)
	if rep.AlltoallTime <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
}

func TestCPMDSmallRuns(t *testing.T) {
	ds := CPMDWat32Inp1
	ds.Steps = 2 // keep the test fast
	rep := runSmall(t, CPMD(ds), collective.NoPower)
	if rep.AlltoallTime <= 0 {
		t.Fatal("CPMD must spend time in alltoall")
	}
	frac := rep.AlltoallTime.Seconds() / rep.Elapsed.Seconds()
	if frac < 0.05 || frac > 0.8 {
		t.Fatalf("alltoall fraction %.2f outside plausible band", frac)
	}
}

// TestPowerSchemesSaveEnergy: for every app skeleton, Freq-Scaling and
// Proposed must reduce total energy versus Default, and Proposed must be
// the cheapest — Table I/II's qualitative content.
func TestPowerSchemesSaveEnergy(t *testing.T) {
	ds := CPMDWat32Inp1
	ds.Steps = 2
	// IS runs at 32 procs: at 16 procs (2 nodes) its alltoallv messages
	// are small enough that the proposed scheme's throttle transitions
	// cancel its savings — the paper's claim is for 32/64 processes.
	cfg32, err := ClusterFor(32)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		app   App
		procs int
	}{
		{FT(FTClassA), 16},
		{IS(ISClassB), 32},
		{CPMD(ds), 16},
	}
	for _, tc := range cases {
		measure := func(mode collective.PowerMode) float64 {
			if tc.procs == 32 {
				rep, err := Run(tc.app, cfg32, mode)
				if err != nil {
					t.Fatal(err)
				}
				return rep.EnergyJ
			}
			return runSmall(t, tc.app, mode).EnergyJ
		}
		eNo := measure(collective.NoPower)
		eFS := measure(collective.FreqScaling)
		ePr := measure(collective.Proposed)
		if !(eNo > eFS) {
			t.Errorf("%s: freq-scaling %.1f J not below default %.1f J", tc.app.Name, eFS, eNo)
		}
		if !(eFS > ePr) {
			t.Errorf("%s: proposed %.1f J not below freq-scaling %.1f J", tc.app.Name, ePr, eFS)
		}
	}
}

// TestPowerSchemeOverheadBounded: the runtime penalty of the power-aware
// schemes stays in the paper's 2-5% band (§VII-F), generously bounded at
// 10%.
func TestPowerSchemeOverheadBounded(t *testing.T) {
	app := FT(FTClassA)
	dNo := runSmall(t, app, collective.NoPower).Elapsed
	dPr := runSmall(t, app, collective.Proposed).Elapsed
	overhead := dPr.Seconds()/dNo.Seconds() - 1
	if overhead < 0 {
		t.Fatalf("proposed faster than default (%.2f%%), suspicious", overhead*100)
	}
	if overhead > 0.10 {
		t.Fatalf("proposed overhead %.1f%% exceeds 10%%", overhead*100)
	}
}

// TestStrongScaling: doubling processes must substantially reduce total
// time (the paper's ~50% for CPMD) while the alltoall time changes much
// less (Figure 9's observation).
func TestStrongScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("strong-scaling run is slow")
	}
	ds := CPMDWat32Inp1
	ds.Steps = 3
	app := CPMD(ds)
	cfg32, _ := ClusterFor(32)
	cfg64, _ := ClusterFor(64)
	rep32, err := Run(app, cfg32, collective.NoPower)
	if err != nil {
		t.Fatal(err)
	}
	rep64, err := Run(app, cfg64, collective.NoPower)
	if err != nil {
		t.Fatal(err)
	}
	speedup := rep32.Elapsed.Seconds() / rep64.Elapsed.Seconds()
	if speedup < 1.5 {
		t.Errorf("32->64 speedup %.2f, want >= 1.5 (paper: ~2)", speedup)
	}
	a2aRatio := rep32.AlltoallTime.Seconds() / rep64.AlltoallTime.Seconds()
	if a2aRatio > 2.5 {
		t.Errorf("alltoall time shrank %.2fx, paper reports it roughly constant", a2aRatio)
	}
}

func TestReportString(t *testing.T) {
	rep := runSmall(t, IS(ISClassA), collective.NoPower)
	s := rep.String()
	if s == "" {
		t.Fatal("empty report string")
	}
	if rep.EnergyKJ() <= 0 {
		t.Fatal("KJ conversion broken")
	}
}

func TestPowerModeLabels(t *testing.T) {
	if PowerModeLabel(collective.NoPower) != "Default (No-Power)" {
		t.Error("NoPower label")
	}
	if PowerModeLabel(collective.FreqScaling) != "Freq-Scaling" {
		t.Error("FreqScaling label")
	}
	if PowerModeLabel(collective.Proposed) != "Proposed" {
		t.Error("Proposed label")
	}
	if len(Schemes()) != 3 {
		t.Error("Schemes() should list three modes")
	}
}

// TestCommEnergyAttribution: per-rank ledgers split core energy between
// compute and communication; the split must be plausible and sum to the
// core share of total energy.
func TestCommEnergyAttribution(t *testing.T) {
	rep := runSmall(t, FT(FTClassA), collective.NoPower)
	if rep.CommEnergyJ <= 0 || rep.ComputeEnergyJ <= 0 {
		t.Fatalf("missing attribution: comm=%.1f compute=%.1f", rep.CommEnergyJ, rep.ComputeEnergyJ)
	}
	frac := rep.CommEnergyFraction()
	if frac < 0.02 || frac > 0.9 {
		t.Fatalf("comm energy fraction %.2f implausible", frac)
	}
	// Core energy (comm + compute) must not exceed total cluster energy
	// (which adds node base power).
	if rep.CommEnergyJ+rep.ComputeEnergyJ >= rep.EnergyJ {
		t.Fatalf("core energy %.1f exceeds total %.1f",
			rep.CommEnergyJ+rep.ComputeEnergyJ, rep.EnergyJ)
	}
}

// TestCommEnergyDropsUnderProposed: the proposed scheme cuts energy in
// the communication phases specifically.
func TestCommEnergyDropsUnderProposed(t *testing.T) {
	ds := CPMDWat32Inp1
	ds.Steps = 2
	cfg, err := ClusterFor(32)
	if err != nil {
		t.Fatal(err)
	}
	repNo, err := Run(CPMD(ds), cfg, collective.NoPower)
	if err != nil {
		t.Fatal(err)
	}
	repPr, err := Run(CPMD(ds), cfg, collective.Proposed)
	if err != nil {
		t.Fatal(err)
	}
	if repPr.CommEnergyJ >= repNo.CommEnergyJ {
		t.Fatalf("proposed comm energy %.1f not below default %.1f",
			repPr.CommEnergyJ, repNo.CommEnergyJ)
	}
	// Compute-phase energy is untouched (same work at fmax).
	ratio := repPr.ComputeEnergyJ / repNo.ComputeEnergyJ
	if ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("compute energy changed by %.1f%%, expected ~0", 100*(ratio-1))
	}
}
