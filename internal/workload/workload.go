// Package workload provides phase-level skeletons of the applications the
// paper evaluates — NAS FT and IS kernels and the CPMD ab-initio MD code —
// driving the collective library with the real codes' communication
// patterns and calibrated compute phases.
//
// A skeleton preserves what the energy result depends on: the ratio of
// computation to communication, the alltoall message sizes and counts,
// and the strong-scaling behavior from 32 to 64 processes. Absolute
// constants are calibrated so the simulated testbed lands near the
// paper's Table I/II energies under the Default (No-Power) scheme; the
// power-aware schemes are then measured, not fitted.
package workload

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/mpi"
	"pacc/internal/power"
	"pacc/internal/simtime"
)

// CoreFlopsPerSec is the effective per-core computation rate at fmax used
// to convert workload flop counts into compute time (Nehalem-era sustained
// rate for these codes, not peak).
const CoreFlopsPerSec = 1.4e9

// Ctx is the per-rank execution context handed to application bodies.
type Ctx struct {
	R    *mpi.Rank
	C    *mpi.Comm
	Mode collective.PowerMode
	// a2a accumulates time spent in Alltoall/Alltoallv (the paper's
	// figures 9 and 10 track it separately); comm accumulates all
	// collective time.
	a2a  *collective.Trace
	comm *collective.Trace
	// blackBox/lowFreq implement SchemeBlackBox's phase-detection DVFS.
	blackBox bool
	lowFreq  bool
	// ledger attributes this rank's core energy to compute/comm phases.
	ledger *power.Ledger
}

// markPhase switches this rank's energy-attribution label, closing the
// open interval first so attribution is exact.
func (x *Ctx) markPhase(label string) {
	if x.ledger == nil {
		return
	}
	x.R.Core().EnergyJoules() // force accrual at the boundary
	x.ledger.SetPhase(label)
}

// opts builds collective options for an alltoall-class call.
func (x *Ctx) a2aOpts() collective.Options {
	return collective.Options{Power: x.Mode, Trace: x.a2a}
}

func (x *Ctx) commOpts() collective.Options {
	return collective.Options{Power: x.Mode, Trace: x.comm}
}

// Alltoall runs a personalized exchange of bytes per pair.
func (x *Ctx) Alltoall(bytes int64) {
	x.enterComm()
	x.markPhase("comm")
	collective.Alltoall(x.C, bytes, x.a2aOpts())
	x.markPhase("compute")
}

// Alltoallv runs a vector exchange.
func (x *Ctx) Alltoallv(sizeOf func(src, dst int) int64) {
	x.enterComm()
	x.markPhase("comm")
	collective.Alltoallv(x.C, sizeOf, x.a2aOpts())
	x.markPhase("compute")
}

// Allreduce combines bytes across all ranks.
func (x *Ctx) Allreduce(bytes int64) {
	x.enterComm()
	x.markPhase("comm")
	collective.Allreduce(x.C, bytes, x.commOpts())
	x.markPhase("compute")
}

// Bcast broadcasts from rank 0.
func (x *Ctx) Bcast(bytes int64) {
	x.enterComm()
	x.markPhase("comm")
	collective.Bcast(x.C, 0, bytes, x.commOpts())
	x.markPhase("compute")
}

// Reduce reduces to rank 0.
func (x *Ctx) Reduce(bytes int64) {
	x.enterComm()
	x.markPhase("comm")
	collective.Reduce(x.C, 0, bytes, x.commOpts())
	x.markPhase("compute")
}

// Barrier synchronizes the job.
func (x *Ctx) Barrier() {
	x.enterComm()
	x.markPhase("comm")
	collective.Barrier(x.C)
	x.markPhase("compute")
}

// ComputeFlops charges totalFlops of work divided evenly across ranks.
// Under SchemeBlackBox it ends any open communication phase first.
func (x *Ctx) ComputeFlops(totalFlops float64) {
	x.leaveComm()
	perRank := totalFlops / float64(x.C.Size())
	x.R.Compute(simtime.DurationOf(perRank / CoreFlopsPerSec))
}

// App is a runnable application skeleton.
type App struct {
	// Name identifies the application and dataset (e.g. "ft.C",
	// "cpmd/wat-32-inp-1").
	Name string
	// Body is the SPMD program.
	Body func(x *Ctx)
}

// Report summarizes one application run.
type Report struct {
	App     string
	Procs   int
	PPN     int
	Mode    collective.PowerMode
	Elapsed simtime.Duration
	// EnergyJ is whole-cluster energy (cores + node base) over the run.
	EnergyJ float64
	// AlltoallTime is rank 0's cumulative time inside Alltoall and
	// Alltoallv calls.
	AlltoallTime simtime.Duration
	// CommTime adds the other collectives.
	CommTime simtime.Duration
	// CommEnergyJ is the core energy all ranks accrued while inside
	// collective calls (exact per-rank attribution); ComputeEnergyJ is
	// the rest of the core energy. The difference to EnergyJ is node
	// base power.
	CommEnergyJ    float64
	ComputeEnergyJ float64
}

// CommEnergyFraction returns the share of core energy spent communicating.
func (rep Report) CommEnergyFraction() float64 {
	total := rep.CommEnergyJ + rep.ComputeEnergyJ
	if total <= 0 {
		return 0
	}
	return rep.CommEnergyJ / total
}

// EnergyKJ returns the energy in kilojoules (the paper's table unit).
func (rep Report) EnergyKJ() float64 { return rep.EnergyJ / 1000 }

func (rep Report) String() string {
	return fmt.Sprintf("%s p=%d %v: %.2fs, %.2f KJ, alltoall %.2fs",
		rep.App, rep.Procs, rep.Mode, rep.Elapsed.Seconds(), rep.EnergyKJ(), rep.AlltoallTime.Seconds())
}

// Run executes the app on a fresh world built from cfg with the given
// power scheme.
func Run(app App, cfg mpi.Config, mode collective.PowerMode) (Report, error) {
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return Report{}, err
	}
	a2aTraces := make([]*collective.Trace, cfg.NProcs)
	commTraces := make([]*collective.Trace, cfg.NProcs)
	ledgers := make([]*power.Ledger, cfg.NProcs)
	w.Launch(func(r *mpi.Rank) {
		led := power.NewLedger()
		led.SetPhase("compute")
		r.Core().AttachLedger(led)
		ledgers[r.ID()] = led
		x := &Ctx{
			R:      r,
			C:      mpi.CommWorld(r),
			Mode:   mode,
			a2a:    collective.NewTrace(),
			comm:   collective.NewTrace(),
			ledger: led,
		}
		a2aTraces[r.ID()] = x.a2a
		commTraces[r.ID()] = x.comm
		app.Body(x)
		x.markPhase("compute")
		r.Core().AttachLedger(nil)
	})
	elapsed, err := w.Run()
	if err != nil {
		return Report{}, fmt.Errorf("workload %s: %w", app.Name, err)
	}
	rep := Report{
		App:          app.Name,
		Procs:        cfg.NProcs,
		PPN:          cfg.PPN,
		Mode:         mode,
		Elapsed:      elapsed,
		EnergyJ:      w.Station().EnergyJoules(),
		AlltoallTime: a2aTraces[0].Phase(collective.PhaseTotal),
	}
	rep.CommTime = rep.AlltoallTime + commTraces[0].Phase(collective.PhaseTotal)
	for _, led := range ledgers {
		rep.CommEnergyJ += led.Joules("comm")
		rep.ComputeEnergyJ += led.Joules("compute") + led.Joules("init")
	}
	return rep, nil
}

// ClusterFor returns the paper's job configuration for the given process
// count: 64 processes fill all 8 nodes; 32 processes use 4 nodes in the
// 8-way layout (both sockets populated, as the power-aware algorithms
// assume).
func ClusterFor(procs int) (mpi.Config, error) {
	cfg := mpi.DefaultConfig()
	switch {
	case procs <= 0 || procs%cfg.Topo.CoresPerNode() != 0:
		return cfg, fmt.Errorf("workload: procs %d must be a positive multiple of %d",
			procs, cfg.Topo.CoresPerNode())
	case procs > cfg.Topo.Nodes*cfg.Topo.CoresPerNode():
		return cfg, fmt.Errorf("workload: procs %d exceeds the 64-core testbed", procs)
	}
	cfg.NProcs = procs
	cfg.PPN = cfg.Topo.CoresPerNode()
	cfg.Topo.Nodes = procs / cfg.PPN
	return cfg, nil
}

// Schemes lists the paper's three power schemes in presentation order.
func Schemes() []collective.PowerMode {
	return []collective.PowerMode{collective.NoPower, collective.FreqScaling, collective.Proposed}
}

// PowerModeLabel renders the paper's row labels.
func PowerModeLabel(m collective.PowerMode) string {
	switch m {
	case collective.NoPower:
		return "Default (No-Power)"
	case collective.FreqScaling:
		return "Freq-Scaling"
	case collective.Proposed:
		return "Proposed"
	default:
		return m.String()
	}
}
