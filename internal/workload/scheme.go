package workload

import (
	"fmt"

	"pacc/internal/collective"
	"pacc/internal/mpi"
)

// Scheme is a whole-application power policy. The first three wrap the
// paper's per-call collective schemes; SchemeBlackBox reproduces the
// related-work baseline the paper positions against ([5], [6]): an
// adaptive runtime that detects communication *phases* and holds the CPU
// at fmin across them, treating the collectives themselves as opaque.
type Scheme int

const (
	// SchemeDefault runs everything at fmax.
	SchemeDefault Scheme = iota
	// SchemeFreqScaling applies per-call DVFS inside each collective.
	SchemeFreqScaling
	// SchemeProposed applies the paper's power-aware algorithms.
	SchemeProposed
	// SchemeBlackBox scales to fmin at the first collective of a
	// communication phase and back to fmax when computation resumes,
	// without touching the algorithms (no throttling).
	SchemeBlackBox
)

func (s Scheme) String() string {
	switch s {
	case SchemeDefault:
		return "default"
	case SchemeFreqScaling:
		return "freq-scaling (per-call)"
	case SchemeProposed:
		return "proposed"
	case SchemeBlackBox:
		return "black-box phase DVFS"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// powerMode maps a scheme onto the per-call collective mode.
func (s Scheme) powerMode() collective.PowerMode {
	switch s {
	case SchemeFreqScaling:
		return collective.FreqScaling
	case SchemeProposed:
		return collective.Proposed
	default:
		// Default and BlackBox leave the collectives unmodified;
		// BlackBox manages the frequency around them instead.
		return collective.NoPower
	}
}

// RunScheme executes the app under a whole-application power scheme.
func RunScheme(app App, cfg mpi.Config, scheme Scheme) (Report, error) {
	if scheme != SchemeBlackBox {
		return Run(app, cfg, scheme.powerMode())
	}
	wrapped := App{
		Name: app.Name,
		Body: func(x *Ctx) {
			x.blackBox = true
			app.Body(x)
			// Leave the core clean at fmax.
			x.leaveComm()
		},
	}
	return Run(wrapped, cfg, collective.NoPower)
}

// The black-box hooks live on Ctx: every collective entry marks the rank
// "in a communication phase" (scale down on the first), and compute
// marks it out (scale back up). The per-rank granularity mirrors the
// adaptive per-process DVFS of [5].

func (x *Ctx) enterComm() {
	if x.blackBox && !x.lowFreq {
		x.R.ScaleDown()
		x.lowFreq = true
	}
}

func (x *Ctx) leaveComm() {
	if x.blackBox && x.lowFreq {
		x.R.ScaleUp()
		x.lowFreq = false
	}
}
