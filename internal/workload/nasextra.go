package workload

import (
	"fmt"
	"math"

	"pacc/internal/mpi"
)

// The paper evaluates FT and IS; CG and MG are provided as library
// breadth — they exercise the point-to-point and small-allreduce paths
// the alltoall-heavy kernels do not, and give downstream users the other
// two communication archetypes of the NPB suite (ring/transpose exchanges
// and 3-D halo exchanges).

// CGClass parameterizes the NAS CG (conjugate gradient) kernel.
type CGClass struct {
	Name string
	// NA is the matrix order, NonZer the nonzeros per row.
	NA     int64
	NonZer int64
	// OuterIters and InnerIters are the NPB iteration counts.
	OuterIters int
	InnerIters int
}

// NAS CG problem classes.
var (
	CGClassA = CGClass{Name: "A", NA: 14000, NonZer: 11, OuterIters: 15, InnerIters: 25}
	CGClassB = CGClass{Name: "B", NA: 75000, NonZer: 13, OuterIters: 75, InnerIters: 25}
	CGClassC = CGClass{Name: "C", NA: 150000, NonZer: 15, OuterIters: 75, InnerIters: 25}
)

// CG builds the conjugate-gradient skeleton: ranks form a 2D grid; every
// inner iteration does one sparse matrix-vector product (compute +
// transpose exchange of vector segments along the grid row) and two
// 8-byte dot-product allreduces — CG's latency-bound signature.
func CG(class CGClass) App {
	return App{
		Name: "cg." + class.Name,
		Body: func(x *Ctx) {
			p := x.C.Size()
			rows := gridRows(p)
			cols := p / rows
			// Row communicator: ranks sharing a block row exchange
			// vector segments.
			rowC := x.C.SplitColor(
				func(cr int) int { return cr / cols },
				func(cr int) int { return cr % cols },
			)
			segBytes := class.NA * 8 / int64(cols)
			flopsPerMatvec := 2 * float64(class.NA) * float64(class.NonZer)
			for outer := 0; outer < class.OuterIters; outer++ {
				for inner := 0; inner < class.InnerIters; inner++ {
					x.ComputeFlops(flopsPerMatvec)
					// Transpose exchange: swap segments with the
					// mirrored rank in the row.
					if rowC != nil && rowC.Size() > 1 {
						peer := rowC.Size() - 1 - rowC.Rank()
						if peer != rowC.Rank() {
							tag := rowC.TagBlock()
							rowC.SendRecv(peer, segBytes, peer, segBytes, tag)
						}
					}
					x.Allreduce(8) // rho
					x.Allreduce(8) // alpha denominator
				}
				x.Allreduce(8) // residual norm
			}
		},
	}
}

// gridRows picks the most-square factorization rows*cols = p, rows<=cols.
func gridRows(p int) int {
	best := 1
	for r := 1; r*r <= p; r++ {
		if p%r == 0 {
			best = r
		}
	}
	return best
}

// MGClass parameterizes the NAS MG (multigrid) kernel.
type MGClass struct {
	Name string
	// Dim is the edge of the cubic grid.
	Dim int
	// Iters is the number of V-cycles.
	Iters int
}

// NAS MG problem classes.
var (
	MGClassA = MGClass{Name: "A", Dim: 256, Iters: 4}
	MGClassB = MGClass{Name: "B", Dim: 256, Iters: 20}
	MGClassC = MGClass{Name: "C", Dim: 512, Iters: 20}
)

// MG builds the multigrid skeleton: ranks form a 3D grid; each V-cycle
// walks the level hierarchy down and up, doing smoothing compute and
// six-face halo exchanges whose faces shrink fourfold per level — the
// NPB communication pattern with the widest message-size spread.
func MG(class MGClass) App {
	return App{
		Name: "mg." + class.Name,
		Body: func(x *Ctx) {
			p := x.C.Size()
			px, py, pz := gridFactor3(p)
			me := x.C.Rank()
			coord := [3]int{me % px, (me / px) % py, me / (px * py)}
			dims := [3]int{px, py, pz}
			neighbor := func(axis, dir int) int {
				c := coord
				c[axis] = (c[axis] + dir + dims[axis]) % dims[axis]
				return c[0] + c[1]*px + c[2]*px*py
			}
			levels := 0
			for d := class.Dim; d >= 4; d /= 2 {
				levels++
			}
			for it := 0; it < class.Iters; it++ {
				for _, down := range []bool{true, false} {
					for l := 0; l < levels; l++ {
						lvl := l
						if !down {
							lvl = levels - 1 - l
						}
						dim := class.Dim >> lvl
						pointsPerRank := float64(dim) * float64(dim) * float64(dim) / float64(p)
						// Smoothing: ~15 flops per point.
						x.ComputeFlops(15 * pointsPerRank * float64(p))
						// Halo: one face per direction per axis.
						local := math.Cbrt(pointsPerRank)
						faceBytes := int64(local*local) * 8
						if faceBytes < 8 {
							faceBytes = 8
						}
						for axis := 0; axis < 3; axis++ {
							if dims[axis] == 1 {
								continue
							}
							plus := neighbor(axis, +1)
							minus := neighbor(axis, -1)
							tag := x.C.TagBlock()
							x.haloExchange(plus, minus, faceBytes, tag)
						}
					}
				}
				// Residual norm.
				x.Allreduce(8)
			}
		},
	}
}

// haloExchange swaps equal faces with the +1 and -1 neighbors along one
// axis (both directions concurrently).
func (x *Ctx) haloExchange(plus, minus int, bytes int64, tag int) {
	if plus == x.C.Rank() || minus == x.C.Rank() {
		return
	}
	start := x.R.Now()
	rq1 := x.C.Irecv(minus, bytes, tag)
	rq2 := x.C.Irecv(plus, bytes, tag+1)
	sq1 := x.C.Isend(plus, bytes, tag)
	sq2 := x.C.Isend(minus, bytes, tag+1)
	mpi.WaitAll(sq1, sq2, rq1, rq2)
	x.comm.Add("total", x.R.Now().Sub(start))
}

// gridFactor3 factors p into the most-cubic px*py*pz.
func gridFactor3(p int) (int, int, int) {
	bestX, bestY, bestZ := 1, 1, p
	bestScore := math.Inf(1)
	for xf := 1; xf*xf*xf <= p; xf++ {
		if p%xf != 0 {
			continue
		}
		rem := p / xf
		for yf := xf; yf*yf <= rem; yf++ {
			if rem%yf != 0 {
				continue
			}
			zf := rem / yf
			score := float64(zf - xf)
			if score < bestScore {
				bestScore = score
				bestX, bestY, bestZ = xf, yf, zf
			}
		}
	}
	return bestX, bestY, bestZ
}

// NASExtraApp resolves the CG/MG kernels by NPB name.
func NASExtraApp(name string) (App, error) {
	switch name {
	case "cg.A":
		return CG(CGClassA), nil
	case "cg.B":
		return CG(CGClassB), nil
	case "cg.C":
		return CG(CGClassC), nil
	case "mg.A":
		return MG(MGClassA), nil
	case "mg.B":
		return MG(MGClassB), nil
	case "mg.C":
		return MG(MGClassC), nil
	default:
		return App{}, fmt.Errorf("workload: unknown NAS kernel %q", name)
	}
}
