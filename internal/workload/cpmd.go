package workload

import "fmt"

// CPMDDataset parameterizes one CPMD (Car-Parrinello molecular dynamics)
// input deck. CPMD's plane-wave DFT iterations are dominated by 3-D FFTs
// whose transposes are MPI_Alltoall calls of moderate size, plus dense
// orthonormalization compute — which is why the paper uses it to evaluate
// the power-aware alltoall (§VII-F).
type CPMDDataset struct {
	// Name matches the paper's dataset label.
	Name string
	// Steps is the number of MD/SCF steps simulated.
	Steps int
	// FFTAlltoalls is the number of medium alltoall transposes per step.
	FFTAlltoalls int
	// FFTTotalBytes is the aggregate volume of one transpose (per-pair
	// size is FFTTotalBytes / P^2) — fixed under strong scaling.
	FFTTotalBytes int64
	// SmallAlltoalls per step model the pencil redistributions whose
	// per-pair size is fixed (SmallBytes), so their cost grows with the
	// process count — the component that keeps CPMD's total alltoall
	// time roughly constant under strong scaling (Figure 9).
	SmallAlltoalls int
	SmallBytes     int64
	// FlopsPerStep is the aggregate compute per step across all ranks.
	FlopsPerStep float64
}

// The paper's three datasets, calibrated so the Default scheme lands near
// Table I (wat-32-inp-1 ≈ 28/32 KJ, wat-32-inp-2 ≈ 33/39 KJ, ta-inp-md ≈
// 266/305 KJ at 32/64 processes) with the alltoall fraction of Figure 9.
var (
	CPMDWat32Inp1 = CPMDDataset{
		Name:           "wat-32-inp-1",
		Steps:          10,
		FFTAlltoalls:   7,
		FFTTotalBytes:  1 << 30,
		SmallAlltoalls: 16,
		SmallBytes:     64 << 10,
		FlopsPerStep:   8.5e10,
	}
	CPMDWat32Inp2 = CPMDDataset{
		Name:           "wat-32-inp-2",
		Steps:          12,
		FFTAlltoalls:   7,
		FFTTotalBytes:  1 << 30,
		SmallAlltoalls: 16,
		SmallBytes:     64 << 10,
		FlopsPerStep:   8.5e10,
	}
	CPMDTaInpMD = CPMDDataset{
		Name:           "ta-inp-md",
		Steps:          96,
		FFTAlltoalls:   7,
		FFTTotalBytes:  1 << 30,
		SmallAlltoalls: 16,
		SmallBytes:     64 << 10,
		FlopsPerStep:   8.5e10,
	}
)

// CPMDDatasets lists the paper's datasets in Table I order.
func CPMDDatasets() []CPMDDataset {
	return []CPMDDataset{CPMDWat32Inp1, CPMDWat32Inp2, CPMDTaInpMD}
}

// CPMDDatasetByName resolves a dataset label.
func CPMDDatasetByName(name string) (CPMDDataset, error) {
	for _, d := range CPMDDatasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return CPMDDataset{}, fmt.Errorf("workload: unknown CPMD dataset %q", name)
}

// CPMD builds the skeleton: each step runs the electronic-structure
// compute, the FFT transposes (medium alltoalls whose aggregate volume is
// fixed, so per-pair size shrinks as P² — alltoall time shrinks only
// mildly because steps also serialize on startup-bound small exchanges,
// reproducing the paper's near-constant alltoall time from 32 to 64
// processes), and an energy reduction.
func CPMD(ds CPMDDataset) App {
	return App{
		Name: "cpmd/" + ds.Name,
		Body: func(x *Ctx) {
			p := int64(x.C.Size())
			perPair := ds.FFTTotalBytes / p / p
			for s := 0; s < ds.Steps; s++ {
				x.ComputeFlops(ds.FlopsPerStep)
				for i := 0; i < ds.FFTAlltoalls; i++ {
					x.Alltoall(perPair)
				}
				for i := 0; i < ds.SmallAlltoalls; i++ {
					x.Alltoall(ds.SmallBytes)
				}
				// Kohn-Sham energy terms.
				x.Allreduce(2 << 10)
			}
		},
	}
}
