package workload

import (
	"testing"

	"pacc/internal/collective"
)

func TestGridFactors(t *testing.T) {
	if r := gridRows(64); r != 8 {
		t.Errorf("gridRows(64) = %d, want 8", r)
	}
	if r := gridRows(32); r != 4 {
		t.Errorf("gridRows(32) = %d, want 4", r)
	}
	if r := gridRows(7); r != 1 {
		t.Errorf("gridRows(7) = %d, want 1", r)
	}
	for _, p := range []int{8, 16, 32, 64, 48} {
		x, y, z := gridFactor3(p)
		if x*y*z != p {
			t.Errorf("gridFactor3(%d) = %d*%d*%d", p, x, y, z)
		}
		if x > y || y > z {
			t.Errorf("gridFactor3(%d) not ordered: %d,%d,%d", p, x, y, z)
		}
	}
	if x, y, z := gridFactor3(64); x != 4 || y != 4 || z != 4 {
		t.Errorf("gridFactor3(64) = %d,%d,%d, want cubic", x, y, z)
	}
}

func TestNASExtraLookup(t *testing.T) {
	for _, name := range []string{"cg.A", "cg.B", "cg.C", "mg.A", "mg.B", "mg.C"} {
		app, err := NASExtraApp(name)
		if err != nil || app.Name != name {
			t.Errorf("%s: %v / %q", name, err, app.Name)
		}
	}
	if _, err := NASExtraApp("lu.C"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestCGRuns(t *testing.T) {
	cg := CGClassA
	cg.OuterIters = 2
	rep := runSmall(t, CG(cg), collective.NoPower)
	if rep.Elapsed <= 0 || rep.EnergyJ <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	if rep.CommTime <= 0 {
		t.Fatal("CG must communicate (allreduces + transpose exchanges)")
	}
}

func TestMGRuns(t *testing.T) {
	mg := MGClassA
	mg.Iters = 1
	rep := runSmall(t, MG(mg), collective.NoPower)
	if rep.Elapsed <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	if rep.CommTime <= 0 {
		t.Fatal("MG must spend time in halo exchanges")
	}
}

// TestCGMGPowerSchemes: the power schemes must run and save energy on the
// new kernels too (FreqScaling at minimum; CG/MG are latency-bound so
// savings are small but the ordering must not invert by much).
func TestCGMGPowerSchemes(t *testing.T) {
	cg := CGClassA
	cg.OuterIters = 2
	mg := MGClassA
	mg.Iters = 1
	for _, app := range []App{CG(cg), MG(mg)} {
		eNo := runSmall(t, app, collective.NoPower).EnergyJ
		ePr := runSmall(t, app, collective.Proposed).EnergyJ
		if ePr > eNo*1.02 {
			t.Errorf("%s: proposed energy %.1f J well above default %.1f J", app.Name, ePr, eNo)
		}
	}
}

// TestMGScales: 32 -> 64 ranks must speed MG up.
func TestMGScales(t *testing.T) {
	mg := MGClassB
	mg.Iters = 2
	cfg32, _ := ClusterFor(32)
	cfg64, _ := ClusterFor(64)
	r32, err := Run(MG(mg), cfg32, collective.NoPower)
	if err != nil {
		t.Fatal(err)
	}
	r64, err := Run(MG(mg), cfg64, collective.NoPower)
	if err != nil {
		t.Fatal(err)
	}
	if r64.Elapsed >= r32.Elapsed {
		t.Fatalf("MG did not scale: %v at 32 vs %v at 64", r32.Elapsed, r64.Elapsed)
	}
}

func TestSchemeStrings(t *testing.T) {
	if SchemeDefault.String() != "default" || SchemeBlackBox.String() != "black-box phase DVFS" {
		t.Error("scheme strings wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should format")
	}
}

// TestBlackBoxScheme: phase-detection DVFS saves energy vs default and
// leaves cores at fmax.
func TestBlackBoxScheme(t *testing.T) {
	ds := CPMDWat32Inp1
	ds.Steps = 2
	app := CPMD(ds)
	cfg, err := ClusterFor(32)
	if err != nil {
		t.Fatal(err)
	}
	repDef, err := RunScheme(app, cfg, SchemeDefault)
	if err != nil {
		t.Fatal(err)
	}
	repBB, err := RunScheme(app, cfg, SchemeBlackBox)
	if err != nil {
		t.Fatal(err)
	}
	repPr, err := RunScheme(app, cfg, SchemeProposed)
	if err != nil {
		t.Fatal(err)
	}
	if repBB.EnergyJ >= repDef.EnergyJ {
		t.Fatalf("black-box energy %.1f J not below default %.1f J", repBB.EnergyJ, repDef.EnergyJ)
	}
	// The paper's positioning: algorithm-aware throttling beats the
	// black-box baseline.
	if repPr.EnergyJ >= repBB.EnergyJ {
		t.Fatalf("proposed %.1f J not below black-box %.1f J", repPr.EnergyJ, repBB.EnergyJ)
	}
	if repBB.Elapsed.Seconds() > repDef.Elapsed.Seconds()*1.10 {
		t.Fatalf("black-box overhead too high: %v vs %v", repBB.Elapsed, repDef.Elapsed)
	}
}
