package model_test

import (
	"testing"

	"pacc/internal/collective"
	"pacc/internal/mpi"
)

// measureCollective runs one collective under a scheme and returns the
// elapsed time (s) and core-only energy (J) — node base power subtracted,
// because equations (5)-(8) integrate core power only.
func measureCollective(t *testing.T, mode collective.PowerMode,
	body func(c *mpi.Comm, opt collective.Options)) (float64, float64) {
	t.Helper()
	cfg := mpi.DefaultConfig()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		body(mpi.CommWorld(r), collective.Options{Power: mode})
	})
	elapsed, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := w.Station().EnergyJoules()
	base := float64(cfg.Topo.Nodes) * cfg.Power.NodeBaseWatts * elapsed.Seconds()
	return elapsed.Seconds(), total - base
}

// TestEq5MatchesSimulation: during a default collective every core is
// busy at fmax, so core energy = N*c*p(fmax)*T — eq (5) exactly.
func TestEq5MatchesSimulation(t *testing.T) {
	p := defaultParams()
	T, J := measureCollective(t, collective.NoPower, func(c *mpi.Comm, opt collective.Options) {
		collective.AlltoallPairwise(c, 512<<10, opt)
	})
	want := p.EnergyDefault(8, 8, T)
	ratio := J / want
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("eq(5): sim %.1f J vs model %.1f J (ratio %.3f)", J, want, ratio)
	}
}

// TestEq6MatchesSimulation: with Freq-Scaling all cores run the
// collective at fmin — eq (6). The fmax bracketing transitions make the
// match slightly looser.
func TestEq6MatchesSimulation(t *testing.T) {
	p := defaultParams()
	T, J := measureCollective(t, collective.FreqScaling, func(c *mpi.Comm, opt collective.Options) {
		collective.AlltoallPairwise(c, 512<<10, opt)
	})
	want := p.EnergyDVFS(8, 8, T)
	ratio := J / want
	if ratio < 0.95 || ratio > 1.10 {
		t.Fatalf("eq(6): sim %.1f J vs model %.1f J (ratio %.3f)", J, want, ratio)
	}
}

// TestEq7MatchesSimulation: the proposed alltoall's core energy should
// track eq (7) — each core half unthrottled at fmin, half at T7 — to
// within the intra-phase and transition slack.
func TestEq7MatchesSimulation(t *testing.T) {
	p := defaultParams()
	T, J := measureCollective(t, collective.Proposed, func(c *mpi.Comm, opt collective.Options) {
		collective.AlltoallPairwise(c, 512<<10, opt)
	})
	want := p.EnergyAlltoallProposed(8, 8, T)
	ratio := J / want
	// Eq (7) idealizes the schedule as exactly half the interval at T7
	// per core. The simulation spends phase 1 fully unthrottled, the
	// active group of each phase spins at T0 for the phase's entire
	// span, and the paired sub-steps add notification slack, so the
	// measured energy sits ~30-40% above the ideal; guard the band.
	if ratio < 1.0 || ratio > 1.45 {
		t.Fatalf("eq(7): sim %.1f J vs model %.1f J (ratio %.3f)", J, want, ratio)
	}
	// And eq (7) must sit strictly below eq (6) for the same interval.
	if !(want < p.EnergyDVFS(8, 8, T)) {
		t.Fatal("eq(7) not below eq(6)")
	}
}

// TestEq8MatchesSimulation: the proposed bcast draws (c4+c7)/2 of the
// fmin power on average during its network phase. The whole-call energy
// also includes the intra phase at T0, so the simulated value sits
// between eq (8) and eq (6).
func TestEq8BoundsSimulation(t *testing.T) {
	p := defaultParams()
	T, J := measureCollective(t, collective.Proposed, func(c *mpi.Comm, opt collective.Options) {
		// Repeat so per-call transition costs amortize.
		for i := 0; i < 4; i++ {
			collective.Bcast(c, 0, 1<<20, opt)
		}
	})
	lo := p.EnergyBcastProposed(8, 8, T)
	hi := p.EnergyDVFS(8, 8, T) * 1.05
	if !(J > lo && J < hi) {
		t.Fatalf("eq(8) bound: sim %.1f J outside (%.1f, %.1f)", J, lo, hi)
	}
}

// TestPowerAwareTimeEquations: eqs (3) and (4) give finite positive
// predictions that exceed their transition-free parts.
func TestPowerAwareTimeEquations(t *testing.T) {
	p := defaultParams()
	m := int64(256 << 10)
	if got := p.AlltoallPowerAwareTime(8, 8, m); got <= 0.75*p.TwInter*8*8*p.Cnet*float64(m) {
		t.Fatalf("eq(3) missing overhead terms: %v", got)
	}
	if got := p.BcastPowerAwareTime(8, m); got <= p.BcastTime(8, m) {
		t.Fatalf("eq(4) not above default bcast time: %v", got)
	}
}
