package model

import "pacc/internal/plan"

// PlanCost is the model's prediction for one candidate schedule.
type PlanCost struct {
	// Seconds is the predicted latency of the critical rank.
	Seconds float64
	// Joules is the predicted whole-communicator core energy.
	Joules float64
}

// PredictPlan prices a plan summary with the §VI cost terms: per-message
// startup plus contended per-byte transfer for inter-node traffic,
// shared-memory per-byte cost for intra-node traffic and local data
// movement, and the measured transition latencies for every power step on
// the critical rank. The same closed forms behind equations (1)-(4) —
// applied to a schedule summary instead of a named algorithm — which is
// what turns the paper's message-size switchover tables into data:
// selection compares PredictPlan over all registered candidates instead
// of consulting a hard-coded threshold.
func (p Params) PredictPlan(st plan.Stats) PlanCost {
	secs := p.TsInter*float64(st.MaxInterMsgs) +
		p.TwInter*p.Cnet*float64(st.MaxInterBytes) +
		p.TsIntra*float64(st.MaxIntraMsgs) +
		p.TwIntra*float64(st.MaxIntraBytes+st.MaxCopyBytes+st.MaxRedBytes) +
		float64(st.MaxVerifyBytes)/plan.DefaultVerifyBytesPerSec +
		p.ODVFS*float64(st.MaxDVFS) +
		p.OThrottle*float64(st.MaxThrottle)

	// Energy follows the §VI-B power integrals: cores run at fmin for the
	// whole interval when the schedule carries DVFS transitions, and
	// phased throttling halves the awake time of the throttled cores
	// (equation (7)'s (1+c7)/2 duty).
	corePower := p.PCoreFmax
	if st.MaxDVFS > 0 {
		corePower = p.PCoreFmin
	}
	duty := 1.0
	if st.MaxThrottle > 0 {
		duty = (1 + p.C7) / 2
	}
	joules := float64(st.P) * corePower * duty * secs
	return PlanCost{Seconds: secs, Joules: joules}
}
