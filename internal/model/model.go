// Package model implements the analytical performance and power models of
// Section VI of Kandalla et al. (ICPP 2010), equations (1)-(8). The
// models extend Thakur/Rabenseifner/Gropp-style collective cost models to
// multi-core clusters with a network-contention factor Cnet and a
// throttling degradation factor Cthrottle, and pair them with power
// integrals over the paper's three schemes.
//
// The package is pure arithmetic: experiments use it both for the
// "theoretical" curves (Figure 2a) and to cross-check the discrete-event
// simulation against closed forms.
package model

import (
	"fmt"

	"pacc/internal/mpi"
	"pacc/internal/power"
)

// Params carries the model constants. Times are seconds, rates
// seconds/byte, power in watts.
type Params struct {
	// TsInter / TwInter: startup and per-byte cost of one uncontended
	// inter-node message.
	TsInter float64
	TwInter float64
	// TsIntra / TwIntra: same for the shared-memory channel.
	TsIntra float64
	TwIntra float64
	// Cnet is the network contention factor (any positive value; §VI-A).
	// With one switch link per node and c ranks sending concurrently,
	// Cnet ≈ c.
	Cnet float64
	// Cthrottle is the §VI-A.3 degradation factor of a network phase
	// driven by a throttled (T4) leader socket.
	Cthrottle float64
	// ODVFS and OThrottle are the transition latencies.
	ODVFS     float64
	OThrottle float64

	// PCoreFmax / PCoreFmin: per-core busy power at the two ends of the
	// DVFS range.
	PCoreFmax float64
	PCoreFmin float64
	// C4 and C7 are the duty factors of T4 and T7.
	C4 float64
	C7 float64
	// NodeBase is the non-core power per node.
	NodeBase float64
}

// FromConfig derives model parameters from a simulator configuration, so
// the closed forms and the discrete-event simulation share a calibration.
func FromConfig(cfg mpi.Config) Params {
	m := cfg.Power
	return Params{
		TsInter:   cfg.InterStartup.Seconds(),
		TwInter:   1/cfg.Net.LinkBytesPerSec + 1/cfg.HostBytesPerSec,
		TsIntra:   cfg.IntraStartup.Seconds(),
		TwIntra:   1 / cfg.Shm.CopyBytesPerSec,
		Cnet:      float64(cfg.PPN),
		Cthrottle: 1.15,
		ODVFS:     m.ODVFS.Seconds(),
		OThrottle: m.OThrottle.Seconds(),
		PCoreFmax: m.CoreWatts(m.FMaxGHz, power.T0, true),
		PCoreFmin: m.CoreWatts(m.FMinGHz, power.T0, true),
		C4:        m.Duty[power.T4],
		C7:        m.Duty[power.T7],
		NodeBase:  m.NodeBaseWatts,
	}
}

// Validate rejects non-positive rates and factors.
func (p Params) Validate() error {
	if p.TwInter <= 0 || p.TwIntra <= 0 {
		return fmt.Errorf("model: per-byte costs must be positive")
	}
	if p.Cnet <= 0 || p.Cthrottle <= 0 {
		return fmt.Errorf("model: contention factors must be positive")
	}
	if p.PCoreFmax < p.PCoreFmin {
		return fmt.Errorf("model: PCoreFmax below PCoreFmin")
	}
	return nil
}

// AlltoallTime is equation (1): the pairwise-exchange alltoall across
// P = N*c processes, T = tw_inter * (P-c) * Cnet * M. With one switch
// link per node, Cnet ≈ c — the fluid-model link sharing realizes the
// same product.
func (p Params) AlltoallTime(nodes, ppn int, m int64) float64 {
	P := nodes * ppn
	return p.TwInter * float64(P-ppn) * p.Cnet * float64(m)
}

// BcastTime is equation (2): the inter-leader scatter-allgather
// broadcast, T = M (N-1) tw_inter (1 + 1/N).
func (p Params) BcastTime(nodes int, m int64) float64 {
	n := float64(nodes)
	return float64(m) * (n - 1) * p.TwInter * (1 + 1/n)
}

// AlltoallPowerAwareTime is equation (3): the proposed algorithm's
// phases 2-4 each move the same volume at half the contention
// (Cnet/4 per phase pair), plus two DVFS transitions and N throttle
// rounds: T = (3/4) tw N c Cnet M + 2 Odvfs + N Othrottle.
func (p Params) AlltoallPowerAwareTime(nodes, ppn int, m int64) float64 {
	return 0.75*p.TwInter*float64(nodes)*float64(ppn)*p.Cnet*float64(m) +
		2*p.ODVFS + float64(nodes)*p.OThrottle
}

// BcastPowerAwareTime is equation (4): the §V-B broadcast with the
// leader socket throttled, T = TBcast * Cthrottle + 2 Odvfs + 2 Othrottle.
func (p Params) BcastPowerAwareTime(nodes int, m int64) float64 {
	return p.BcastTime(nodes, m)*p.Cthrottle + 2*p.ODVFS + 2*p.OThrottle
}

// EnergyDefault is equation (5): all N*c cores at p_core(fmax) for the
// interval T (core energy only — node base power is reported separately
// so the three schemes remain comparable on any cluster size).
func (p Params) EnergyDefault(nodes, ppn int, T float64) float64 {
	return float64(nodes*ppn) * p.PCoreFmax * T
}

// EnergyDVFS is equation (6): all cores at p_core(fmin) for the (longer)
// interval T'.
func (p Params) EnergyDVFS(nodes, ppn int, T float64) float64 {
	return float64(nodes*ppn) * p.PCoreFmin * T
}

// EnergyAlltoallProposed is equation (7): during the inter-node phases
// each core spends half its time unthrottled at fmin and half at T7, so
// E = N c p(fmin) T (1 + c7)/2.
func (p Params) EnergyAlltoallProposed(nodes, ppn int, T float64) float64 {
	return float64(nodes*ppn) * p.PCoreFmin * T * (1 + p.C7) / 2
}

// EnergyBcastProposed is equation (8): half the cores (leader socket) at
// c4·p(fmin) and half at c7·p(fmin): E = (N c / 2)(c4 + c7) p(fmin) T.
func (p Params) EnergyBcastProposed(nodes, ppn int, T float64) float64 {
	return float64(nodes*ppn) / 2 * (p.C4 + p.C7) * p.PCoreFmin * T
}
