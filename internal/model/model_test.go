package model_test

import (
	"math"
	"testing"
	"testing/quick"

	"pacc/internal/collective"
	"pacc/internal/model"
	"pacc/internal/mpi"
	"pacc/internal/simtime"
)

func defaultParams() model.Params { return model.FromConfig(mpi.DefaultConfig()) }

func TestFromConfigValid(t *testing.T) {
	p := defaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cnet != 8 {
		t.Errorf("Cnet = %v, want ppn (8)", p.Cnet)
	}
	if p.C7 >= p.C4 || p.C4 >= 1 {
		t.Errorf("duty ordering wrong: c4=%v c7=%v", p.C4, p.C7)
	}
	if p.PCoreFmin >= p.PCoreFmax {
		t.Errorf("power ordering wrong: %v vs %v", p.PCoreFmin, p.PCoreFmax)
	}
}

func TestValidateRejects(t *testing.T) {
	p := defaultParams()
	p.TwInter = 0
	if p.Validate() == nil {
		t.Error("zero TwInter accepted")
	}
	p = defaultParams()
	p.Cnet = -1
	if p.Validate() == nil {
		t.Error("negative Cnet accepted")
	}
	p = defaultParams()
	p.PCoreFmax = p.PCoreFmin - 1
	if p.Validate() == nil {
		t.Error("inverted power range accepted")
	}
}

// TestEq1ScalesLinearly: equation (1) is linear in M and in (P-c).
func TestEq1ScalesLinearly(t *testing.T) {
	p := defaultParams()
	t1 := p.AlltoallTime(8, 8, 1<<20)
	t2 := p.AlltoallTime(8, 8, 2<<20)
	if math.Abs(t2/t1-2) > 1e-9 {
		t.Errorf("doubling M gave ratio %v", t2/t1)
	}
}

// TestEq1ContentionGap: the model predicts the 8-way layout is slower
// than the 4-way one for the same 32 processes — the Figure 2(a) gap.
func TestEq1ContentionGap(t *testing.T) {
	p4 := defaultParams()
	p4.Cnet = 4
	p8 := defaultParams()
	p8.Cnet = 8
	t4 := p4.AlltoallTime(8, 4, 1<<20) // 32 procs, 4-way
	t8 := p8.AlltoallTime(4, 8, 1<<20) // 32 procs, 8-way
	if t8 <= t4 {
		t.Fatalf("model: 8-way (%v) not slower than 4-way (%v)", t8, t4)
	}
}

// TestEq3OverheadLinearInNodes: the power-aware alltoall's overhead term
// grows linearly with the node count (§VI-A.2's observation).
func TestEq3OverheadLinearInNodes(t *testing.T) {
	p := defaultParams()
	base := func(n int) float64 {
		return p.AlltoallPowerAwareTime(n, 8, 0) // M=0 isolates overhead
	}
	o2 := base(2) - 2*p.ODVFS
	o8 := base(8) - 2*p.ODVFS
	if math.Abs(o8/o2-4) > 1e-9 {
		t.Fatalf("throttle overhead ratio %v, want 4 (linear in N)", o8/o2)
	}
}

// TestEq4Throttle: power-aware bcast time = default * Cthrottle plus
// constant transitions.
func TestEq4Throttle(t *testing.T) {
	p := defaultParams()
	d := p.BcastTime(8, 1<<20)
	pa := p.BcastPowerAwareTime(8, 1<<20)
	want := d*p.Cthrottle + 2*p.ODVFS + 2*p.OThrottle
	if math.Abs(pa-want) > 1e-12 {
		t.Fatalf("eq4 = %v, want %v", pa, want)
	}
}

// TestEnergyOrdering: for any fixed interval, eq (5) > eq (6) > eq (7) and
// eq (6) > eq (8) — the paper's comparison of the three schemes.
func TestEnergyOrdering(t *testing.T) {
	p := defaultParams()
	f := func(tSel uint8) bool {
		T := 0.001 + float64(tSel)/100
		e5 := p.EnergyDefault(8, 8, T)
		e6 := p.EnergyDVFS(8, 8, T)
		e7 := p.EnergyAlltoallProposed(8, 8, T)
		e8 := p.EnergyBcastProposed(8, 8, T)
		return e5 > e6 && e6 > e7 && e6 > e8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestModelMatchesSimulationAlltoall cross-checks eq (1) against the
// discrete-event simulator for the large-message alltoall. The model
// ignores startup, rendezvous handshakes and phase effects, so agreement
// within 40% over a 64x size range validates the shared calibration.
func TestModelMatchesSimulationAlltoall(t *testing.T) {
	p := defaultParams()
	for _, m := range []int64{64 << 10, 512 << 10, 1 << 20} {
		cfg := mpi.DefaultConfig()
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Launch(func(r *mpi.Rank) {
			collective.AlltoallPairwise(mpi.CommWorld(r), m, collective.Options{})
		})
		got, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := p.AlltoallTime(8, 8, m)
		ratio := got.Seconds() / want
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("M=%d: sim %.4fs vs model %.4fs (ratio %.2f)", m, got.Seconds(), want, ratio)
		}
	}
}

// TestModelMatchesSimulationBcast cross-checks eq (2) against the
// simulated inter-leader network phase of the multi-core broadcast.
func TestModelMatchesSimulationBcast(t *testing.T) {
	p := defaultParams()
	for _, m := range []int64{256 << 10, 1 << 20} {
		cfg := mpi.DefaultConfig()
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		traces := make([]*collective.Trace, cfg.NProcs)
		w.Launch(func(r *mpi.Rank) {
			tr := collective.NewTrace()
			traces[r.ID()] = tr
			collective.Bcast(mpi.CommWorld(r), 0, m, collective.Options{Trace: tr})
		})
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		got := traces[0].Phase(collective.PhaseNetwork).Seconds()
		want := p.BcastTime(8, m)
		ratio := got / want
		// Equation (2) is loose: it charges full-size chunks in the
		// allgather term, overestimating by ~4x (the paper's own
		// Figure 2(b) measurement also sits well below eq (2)). The
		// check guards the order of magnitude and linearity.
		if ratio < 0.15 || ratio > 2.0 {
			t.Errorf("M=%d: sim network %.5fs vs model %.5fs (ratio %.2f)", m, got, want, ratio)
		}
	}
}

// TestModelMatchesSimulationPowerAware: eq (3)'s prediction that the
// proposed alltoall costs at most modestly more than the default should
// hold in simulation too.
func TestModelMatchesSimulationPowerAware(t *testing.T) {
	const m = 512 << 10
	elapsed := func(mode collective.PowerMode) simtime.Duration {
		cfg := mpi.DefaultConfig()
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Launch(func(r *mpi.Rank) {
			collective.AlltoallPairwise(mpi.CommWorld(r), m, collective.Options{Power: mode})
		})
		d, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	p := defaultParams()
	modelRatio := p.AlltoallPowerAwareTime(8, 8, m) / p.AlltoallTime(8, 8, m)
	simRatio := elapsed(collective.Proposed).Seconds() / elapsed(collective.NoPower).Seconds()
	// Eq (3) predicts a ratio near 3/4 (it credits halved contention);
	// the simulation realizes serialization the model ignores, so allow
	// a generous band, but both must stay within ~35% of the default.
	if simRatio > 1.35 {
		t.Errorf("sim proposed/default ratio %.2f too high", simRatio)
	}
	if modelRatio > 1.35 {
		t.Errorf("model proposed/default ratio %.2f too high", modelRatio)
	}
}
