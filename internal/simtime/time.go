// Package simtime implements a deterministic discrete-event simulation
// engine with cooperative processes.
//
// The engine owns a virtual clock and an event queue. Simulated processes
// are ordinary goroutines that run strictly one at a time: a process runs
// until it blocks on one of the engine primitives (Sleep, Wait, ...), at
// which point control returns to the engine, which advances the clock to
// the next scheduled event. Because exactly one goroutine (either the
// engine or a single process) executes at any instant, simulations are
// fully deterministic and race-free without locks.
package simtime

import "fmt"

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a time later than any event a simulation will schedule.
const Infinity Time = 1<<63 - 1

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from s to t.
func (t Time) Sub(s Time) Duration { return Duration(t - s) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// DurationOf converts a floating-point number of seconds into a Duration,
// rounding to the nearest nanosecond. Negative and NaN inputs are clamped
// to zero; a simulation can only move forward.
func DurationOf(seconds float64) Duration {
	if !(seconds > 0) {
		return 0
	}
	return Duration(seconds*1e9 + 0.5)
}

// Micros constructs a Duration from a floating-point microsecond count.
func Micros(us float64) Duration { return DurationOf(us / 1e6) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

func (d Duration) String() string {
	return fmt.Sprintf("%.3fus", d.Micros())
}
