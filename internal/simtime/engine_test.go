package simtime

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestDurationOf(t *testing.T) {
	cases := []struct {
		secs float64
		want Duration
	}{
		{0, 0},
		{-1, 0},
		{1e-9, 1},
		{1, Second},
		{0.5, 500 * Millisecond},
		{1e-6, Microsecond},
	}
	for _, c := range cases {
		if got := DurationOf(c.secs); got != c.want {
			t.Errorf("DurationOf(%v) = %v, want %v", c.secs, got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	t1 := t0.Add(500)
	if t1 != 1500 {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 500 {
		t.Fatalf("Sub: got %d", d)
	}
	if s := Time(2_500_000_000).Seconds(); s != 2.5 {
		t.Fatalf("Seconds: got %v", s)
	}
	if us := Duration(1500).Micros(); us != 1.5 {
		t.Fatalf("Micros: got %v", us)
	}
}

func TestMicrosRoundTrip(t *testing.T) {
	f := func(us uint16) bool {
		d := Micros(float64(us))
		return d == Duration(us)*Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	// Same-time events must run in scheduling order.
	e.At(20, func() { order = append(order, 4) })
	n, err := e.Run(Infinity)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("executed %d events, want 4", n)
	}
	want := []int{1, 2, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(1000, func() { ran = true })
	if _, err := e.Run(500); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event past limit ran")
	}
	if e.Now() != 500 {
		t.Fatalf("clock = %v, want 500", e.Now())
	}
	// Continuing past the limit runs the event.
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not run on continued Run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wakeups []Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Microsecond)
			wakeups = append(wakeups, p.Now())
		}
	})
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)}
	if len(wakeups) != 3 {
		t.Fatalf("wakeups = %v", wakeups)
	}
	for i := range want {
		if wakeups[i] != want[i] {
			t.Fatalf("wakeups = %v, want %v", wakeups, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("p%d", i)
			d := Duration(i+1) * Microsecond
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%s@%d", name, p.Now()))
				}
			})
		}
		if _, err := e.Run(Infinity); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != 9 {
		t.Fatalf("log length %d, want 9", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic run: %v vs %v", a, b)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var woke []string
	for _, name := range []string{"a", "b", "c"} {
		n := name
		e.Spawn(n, func(p *Proc) {
			c.Wait(p, "test cond")
			woke = append(woke, n)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		if c.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", c.Waiters())
		}
		c.Broadcast()
	})
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "a" || woke[1] != "b" || woke[2] != "c" {
		t.Fatalf("woke = %v", woke)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	woke := 0
	e.Spawn("w1", func(p *Proc) { c.Wait(p, "x"); woke++ })
	e.Spawn("w2", func(p *Proc) { c.Wait(p, "x"); woke++ })
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(Microsecond)
		c.Signal()
	})
	_, err := e.Run(Infinity)
	if err == nil {
		t.Fatal("expected deadlock error for the unsignaled waiter")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error %v is not DeadlockError", err)
	}
	if woke != 1 {
		t.Fatalf("woke = %d, want 1", woke)
	}
	if len(dl.Blocked) != 1 {
		t.Fatalf("blocked = %v, want exactly one", dl.Blocked)
	}
}

func TestFuture(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	var sawDone []Time
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("waiter%d", i), func(p *Proc) {
			f.Await(p, "future")
			sawDone = append(sawDone, p.Now())
		})
	}
	e.Spawn("completer", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		f.Complete()
	})
	// A late waiter must pass straight through.
	e.Spawn("late", func(p *Proc) {
		p.Sleep(20 * Microsecond)
		f.Await(p, "late")
		sawDone = append(sawDone, p.Now())
	})
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if !f.IsDone() || f.CompletedAt() != Time(7*Microsecond) {
		t.Fatalf("future state: done=%v at=%v", f.IsDone(), f.CompletedAt())
	}
	if len(sawDone) != 3 {
		t.Fatalf("sawDone = %v", sawDone)
	}
	if sawDone[0] != Time(7*Microsecond) || sawDone[1] != Time(7*Microsecond) {
		t.Fatalf("early waiters woke at %v", sawDone[:2])
	}
	if sawDone[2] != Time(20*Microsecond) {
		t.Fatalf("late waiter woke at %v", sawDone[2])
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	f.Complete()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double Complete")
		}
	}()
	f.Complete()
}

func TestDeadlockReportNamesProcs(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Spawn("stuck-proc", func(p *Proc) { c.Wait(p, "never signaled") })
	_, err := e.Run(Infinity)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want deadlock", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck-proc (never signaled)" {
		t.Fatalf("blocked = %q", dl.Blocked)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, func() { count++; e.Stop() })
	e.At(20, func() { count++ })
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 (stopped)", count)
	}
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d after resume, want 2", count)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Microsecond)
		e.Spawn("child", func(q *Proc) {
			q.Sleep(Microsecond)
			childRan = true
		})
		p.Sleep(5 * Microsecond)
	})
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child spawned mid-run did not execute")
	}
}

// Property: any mix of sleeps always finishes with the clock at the max
// completion time and never errors.
func TestSleepMatrixProperty(t *testing.T) {
	f := func(seed uint8) bool {
		e := NewEngine()
		var maxEnd Duration
		for i := 0; i < 5; i++ {
			total := Duration((int(seed)+i*37)%97+1) * Microsecond
			if total > maxEnd {
				maxEnd = total
			}
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				remaining := total
				step := Duration(int(seed)%5+1) * Microsecond
				for remaining > 0 {
					s := step
					if s > remaining {
						s = remaining
					}
					p.Sleep(s)
					remaining -= s
				}
			})
		}
		if _, err := e.Run(Infinity); err != nil {
			return false
		}
		return e.Now() == Time(maxEnd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestProcPanicSurfacesAsError: a panicking process must not hang the
// engine; Run returns a ProcPanicError naming it.
func TestProcPanicSurfacesAsError(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomber", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("boom")
	})
	survived := false
	e.Spawn("bystander", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		survived = true
	})
	_, err := e.Run(Infinity)
	var pp *ProcPanicError
	if !errors.As(err, &pp) {
		t.Fatalf("want ProcPanicError, got %v", err)
	}
	if pp.Proc != "bomber" || pp.Value != "boom" {
		t.Fatalf("wrong panic report: %+v", pp)
	}
	// The engine stops at the panic instant; the bystander never runs
	// to completion.
	if survived {
		t.Fatal("engine kept running after a process panic")
	}
}

// TestRecvMismatchPanicPropagates: at the mpi level a size-mismatched
// receive panics; via the engine it must surface, not hang (covered here
// at the simtime level with a nested panic inside an event resume).
func TestPanicDuringResume(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Spawn("waiter", func(p *Proc) {
		c.Wait(p, "x")
		panic(42)
	})
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(Microsecond)
		c.Broadcast()
	})
	_, err := e.Run(Infinity)
	var pp *ProcPanicError
	if !errors.As(err, &pp) {
		t.Fatalf("want ProcPanicError, got %v", err)
	}
	if pp.Value != 42 {
		t.Fatalf("panic value %v", pp.Value)
	}
}
