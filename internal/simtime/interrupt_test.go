package simtime

import (
	"errors"
	"testing"
)

// TestInterruptAbortsRun: an installed interrupt hook stops the run
// with its error once it trips, leaving the queue intact.
func TestInterruptAbortsRun(t *testing.T) {
	e := NewEngine()
	// An endless event chain: only the interrupt can end this run.
	var reschedule func()
	fired := 0
	reschedule = func() {
		fired++
		e.After(Duration(1), reschedule)
	}
	e.After(Duration(1), reschedule)

	abort := errors.New("abort requested")
	polls := 0
	e.SetInterrupt(func() error {
		polls++
		if fired >= 1000 {
			return abort
		}
		return nil
	}, 10)
	executed, err := e.Run(Infinity)
	if !errors.Is(err, abort) {
		t.Fatalf("Run err = %v, want the interrupt's error", err)
	}
	if executed < 1000 || executed > 1010 {
		t.Fatalf("executed %d events, want ~1000 (poll cadence 10)", executed)
	}
	if polls == 0 || polls > executed {
		t.Fatalf("interrupt polled %d times over %d events", polls, executed)
	}
}

// TestInterruptPollCadence: the hook is amortized — polled once per
// `every` events, not per event.
func TestInterruptPollCadence(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.After(Duration(i), func() {})
	}
	polls := 0
	e.SetInterrupt(func() error { polls++; return nil }, 25)
	if _, err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if polls != 4 {
		t.Fatalf("polled %d times over 100 events at cadence 25, want 4", polls)
	}
	// Removing the hook stops polling entirely.
	e2 := NewEngine()
	e2.After(0, func() {})
	e2.SetInterrupt(func() error { t.Error("removed hook polled"); return nil }, 1)
	e2.SetInterrupt(nil, 0)
	if _, err := e2.Run(Infinity); err != nil {
		t.Fatal(err)
	}
}

// TestKillLiveUnwindsParked: after an aborted run, KillLive retires
// every parked process (no leaked goroutines, no deadlock report).
func TestKillLiveUnwindsParked(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var cleanups int
	for i := 0; i < 3; i++ {
		e.Spawn("parked", func(p *Proc) {
			defer func() { cleanups++ }()
			c.Wait(p, "never signaled")
		})
	}
	abort := errors.New("abort")
	e.SetInterrupt(func() error {
		if e.Now() > 0 {
			return abort
		}
		return nil
	}, 1)
	e.After(Duration(1), func() {})
	e.After(Duration(2), func() {})
	if _, err := e.Run(Infinity); !errors.Is(err, abort) {
		t.Fatalf("Run err = %v, want abort", err)
	}

	e.KillLive()
	if cleanups != 3 {
		t.Fatalf("%d deferred cleanups ran, want 3 (Killed unwind runs defers)", cleanups)
	}
	for _, p := range e.procs {
		if !p.done {
			t.Fatalf("process %s still live after KillLive", p.describe())
		}
	}
}

// TestKillLiveBeforeStart: a spawned process whose body never began
// executing is retired without running the body at all.
func TestKillLiveBeforeStart(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("unstarted", func(p *Proc) { ran = true })
	e.KillLive()
	if ran {
		t.Fatal("KillLive executed the body of a never-started process")
	}
}
