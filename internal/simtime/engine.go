package simtime

import "fmt"

// event is one scheduled action: a plain callback (fn), a process
// wakeup (proc), or a future completion (fut). Keeping wakeups and
// completions as raw pointers instead of closures means the scheduler's
// dominant event kinds — park/resume traffic from Sleep, Cond, Future
// and Kill, and delivery completions from the network — allocate
// nothing per event.
type event struct {
	fn   func()
	proc *Proc
	fut  *Future
}

// bucket holds every event scheduled for one instant, in scheduling
// order. Draining happens through a cursor rather than by popping, so
// events appended to the current instant *while it executes* are seen in
// order — exactly the semantics the old (time, seq) heap gave, because
// anything scheduled during execution necessarily ordered after all
// already-pending events at the same instant.
type bucket struct {
	at   Time
	evs  []event
	next int // drain cursor: evs[:next] have executed
}

// Engine is a discrete-event simulation kernel. The zero value is not
// usable; construct with NewEngine.
//
// The pending-event structure is a calendar of per-instant buckets: a
// small binary heap orders the *distinct* scheduled instants, and each
// instant's events live in one append-only slice. Same-instant
// scheduling — the overwhelmingly common case in a message-passing
// simulation, where every send/recv/wakeup chain fans out at the current
// time — is a bounds check and an append, with no heap sift and no
// per-event allocation. Drained buckets are recycled through a free
// list, so steady-state scheduling does not allocate at all.
type Engine struct {
	now Time
	// timeQ is a binary min-heap of the distinct instants that have a
	// pending bucket. Each instant appears at most once; membership is
	// tracked by the buckets map.
	timeQ   []Time
	buckets map[Time]*bucket
	// cur is the bucket currently being drained (cur.at == now while
	// running). It has been removed from buckets/timeQ; same-instant
	// scheduling appends to it directly.
	cur *bucket
	// free is the bucket recycle list. Buckets keep their event-slice
	// capacity across reuse.
	free []*bucket
	// freeFuts is the Future recycle list (see GetFuture/PutFuture).
	freeFuts []*Future
	procs    []*Proc
	running  bool
	stopped  bool
	// panicErr records the first process panic; Run returns it.
	panicErr error
	// interrupt, when set, is polled between events (every
	// interruptEvery executions); a non-nil return aborts Run with that
	// error. It is the bridge to wall-clock concerns — context
	// cancellation, deadlines — that the virtual clock cannot see.
	interrupt      func() error
	interruptEvery int
	// watchLimit, when positive, arms the no-progress watchdog: if the
	// clock is about to advance more than watchLimit past the last
	// Progress() mark, Run aborts with a *WatchdogError instead of letting
	// a livelocked simulation grind on (retry timers firing forever while
	// the application makes no progress reads as "running" to every other
	// check). watchDiag, when set, contributes a diagnostic dump.
	watchLimit Duration
	watchLast  Time
	watchDiag  func() string
}

// defaultInterruptEvery bounds how many events run between interrupt
// polls. Polling has real-time cost (a context's Err takes a lock), so
// it is amortized; 256 events keeps abort latency far below a
// millisecond of host time on any workload.
const defaultInterruptEvery = 256

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{buckets: make(map[Time]*bucket)}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// schedule enqueues ev at instant t, preserving global (time, scheduling
// order) execution order.
func (e *Engine) schedule(t Time, ev event) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", t, e.now))
	}
	if cur := e.cur; cur != nil && t == cur.at {
		cur.evs = append(cur.evs, ev)
		return
	}
	b := e.buckets[t]
	if b == nil {
		b = e.getBucket(t)
		e.buckets[t] = b
		e.pushTime(t)
	}
	b.evs = append(b.evs, ev)
}

// At schedules fn to run at time t. Scheduling in the past is an error in
// the simulation logic and panics: time only moves forward.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, event{fn: fn})
}

// After schedules fn to run d from now. Negative d means "now".
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now.Add(d), event{fn: fn})
}

// wakeAt schedules process p to be resumed at instant t. No closure is
// allocated; the run loop hands p to runProc directly.
func (e *Engine) wakeAt(t Time, p *Proc) {
	e.schedule(t, event{proc: p})
}

// CompleteAfter schedules f.Complete() to run as an event d from now
// (negative d means "now") without allocating a closure. It is the
// bulk-delivery path: a fabric completing thousands of transfers
// schedules plain values, not funcs.
func (e *Engine) CompleteAfter(d Duration, f *Future) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now.Add(d), event{fut: f})
}

// wakeAllAt schedules a wakeup for every process in ps at instant t, in
// order, growing the destination bucket once. This is the batch path
// behind Cond.Broadcast and Future.Complete: a barrier releasing
// thousands of ranks costs one slice grow, not one heap insert each.
func (e *Engine) wakeAllAt(t Time, ps []*Proc) {
	if len(ps) == 0 {
		return
	}
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", t, e.now))
	}
	var b *bucket
	if cur := e.cur; cur != nil && t == cur.at {
		b = cur
	} else if b = e.buckets[t]; b == nil {
		b = e.getBucket(t)
		e.buckets[t] = b
		e.pushTime(t)
	}
	if need := len(b.evs) + len(ps); cap(b.evs) < need {
		// Grow by at least doubling: sizing to exactly need would make a
		// stream of small broadcasts into one large instant reallocate
		// and copy the whole bucket per call — quadratic in the bucket
		// size, which at tens of thousands of same-instant wakeups
		// dominated entire runs.
		newCap := 2 * cap(b.evs)
		if newCap < need {
			newCap = need
		}
		grown := make([]event, len(b.evs), newCap)
		copy(grown, b.evs)
		b.evs = grown
	}
	for _, p := range ps {
		b.evs = append(b.evs, event{proc: p})
	}
}

// getBucket returns a recycled (or new) empty bucket stamped with t.
func (e *Engine) getBucket(t Time) *bucket {
	if n := len(e.free); n > 0 {
		b := e.free[n-1]
		e.free = e.free[:n-1]
		b.at = t
		return b
	}
	return &bucket{at: t}
}

// recycle returns a fully drained bucket to the free list. Every
// executed slot was zeroed at dispatch, so no closure or process is
// retained through the pool.
func (e *Engine) recycle(b *bucket) {
	b.evs = b.evs[:0]
	b.next = 0
	e.free = append(e.free, b)
}

// pushTime inserts t into the instant min-heap.
func (e *Engine) pushTime(t Time) {
	q := append(e.timeQ, t)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent] <= q[i] {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	e.timeQ = q
}

// popTime removes the minimum instant from the heap.
func (e *Engine) popTime() {
	q := e.timeQ
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q[l] < q[small] {
			small = l
		}
		if r < n && q[r] < q[small] {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	e.timeQ = q
}

// pending reports whether any events remain queued (including an
// undrained current bucket left by Stop).
func (e *Engine) pending() bool {
	if e.cur != nil && e.cur.next < len(e.cur.evs) {
		return true
	}
	return len(e.timeQ) > 0
}

// Stop makes Run return after the currently executing event completes.
// Pending events are kept; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Fail records err as the run's failure and stops the engine; Run returns
// the first recorded failure. Event-context code (which has no process to
// panic in) uses it to surface structured errors — an impossible network
// state, an exhausted protocol — through the same path as process panics
// and deadlock reports, instead of crashing the host process.
func (e *Engine) Fail(err error) {
	if err == nil {
		return
	}
	if e.panicErr == nil {
		e.panicErr = err
	}
	e.stopped = true
}

// Failure returns the recorded failure (a process panic or an explicit
// Fail), or nil.
func (e *Engine) Failure() error { return e.panicErr }

// SetInterrupt installs check, polled every `every` events during Run
// (every <= 0 selects the default). A non-nil return value aborts Run
// with that error, leaving pending events queued and live processes
// parked — pair with KillLive to unwind them. Pass nil to remove the
// hook. check must be safe to call from the Run goroutine; it typically
// reads a context's Err, which is synchronized by the context itself.
func (e *Engine) SetInterrupt(check func() error, every int) {
	if every <= 0 {
		every = defaultInterruptEvery
	}
	e.interrupt = check
	e.interruptEvery = every
}

// SetWatchdog arms the no-progress watchdog: if virtual time is about to
// advance more than limit past the most recent Progress() call, Run stops
// and returns a *WatchdogError carrying the blocked-process list and the
// output of diag (optional, may be nil). Unlike the deadlock report —
// which needs the event queue to drain — the watchdog catches livelock:
// events still firing (retransmission timers, heartbeats) while the
// simulated application itself is stuck. Pass limit <= 0 to disarm.
// Arming starts the progress clock at the current time.
func (e *Engine) SetWatchdog(limit Duration, diag func() string) {
	e.watchLimit = limit
	e.watchLast = e.now
	e.watchDiag = diag
}

// Progress marks application-level progress for the watchdog (a message
// delivery, a completed operation). Cheap enough to call unconditionally;
// a no-op beyond one store when the watchdog is disarmed.
func (e *Engine) Progress() { e.watchLast = e.now }

// WatchdogError reports that the simulation ran without application
// progress for longer than the armed limit.
type WatchdogError struct {
	// Now is the virtual time the watchdog fired at; LastProgress the most
	// recent progress mark; Limit the armed threshold.
	Now          Time
	LastProgress Time
	Limit        Duration
	// Blocked names the live processes parked at firing time.
	Blocked []string
	// Diag is the installed diagnostic dump ("" without one).
	Diag string
}

func (w *WatchdogError) Error() string {
	msg := fmt.Sprintf("simtime: no progress for %v (limit %v, last progress at %v, now %v): %d blocked process(es): %v",
		w.Now.Sub(w.LastProgress), w.Limit, w.LastProgress, w.Now, len(w.Blocked), w.Blocked)
	if w.Diag != "" {
		msg += "\n" + w.Diag
	}
	return msg
}

// KillLive condemns every live process and resumes each so its body
// unwinds with a Killed panic at its current park point (a process that
// never started is retired before its body runs). It is the goroutine
// hygiene of an aborted run: without it, an interrupted simulation
// leaks one parked goroutine per blocked rank. Call only while Run is
// not executing; the engine is not usable for further Runs afterward.
func (e *Engine) KillLive() {
	if e.running {
		panic("simtime: KillLive called while Run is executing")
	}
	for _, p := range e.procs {
		if !p.done {
			p.killed = true
			e.runProc(p)
		}
	}
}

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the clock passes limit (use Infinity for no limit). It returns
// the number of events executed and an error if, after the queue drained,
// live processes remain blocked (a deadlock in the simulated system).
func (e *Engine) Run(limit Time) (int, error) {
	if e.running {
		return 0, fmt.Errorf("simtime: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	executed := 0
	for !e.stopped {
		cur := e.cur
		if cur != nil && cur.next >= len(cur.evs) {
			e.recycle(cur)
			cur, e.cur = nil, nil
		}
		if cur == nil && len(e.timeQ) == 0 {
			break
		}
		if e.interrupt != nil && executed%e.interruptEvery == 0 {
			if err := e.interrupt(); err != nil {
				return executed, err
			}
		}
		if cur == nil {
			t := e.timeQ[0]
			if t > limit {
				e.now = limit
				return executed, nil
			}
			if e.watchLimit > 0 && t.Sub(e.watchLast) > e.watchLimit {
				we := &WatchdogError{
					Now: t, LastProgress: e.watchLast, Limit: e.watchLimit,
					Blocked: e.blockedProcs(),
				}
				if e.watchDiag != nil {
					we.Diag = e.watchDiag()
				}
				return executed, we
			}
			e.popTime()
			cur = e.buckets[t]
			delete(e.buckets, t)
			e.now = t
			e.cur = cur
		} else if cur.at > limit {
			e.now = limit
			return executed, nil
		}
		ev := cur.evs[cur.next]
		cur.evs[cur.next] = event{}
		cur.next++
		switch {
		case ev.proc != nil:
			e.runProc(ev.proc)
		case ev.fut != nil:
			ev.fut.Complete()
		default:
			ev.fn()
		}
		executed++
	}
	if e.panicErr != nil {
		return executed, e.panicErr
	}
	if e.stopped {
		return executed, nil
	}
	if blocked := e.blockedProcs(); len(blocked) > 0 {
		return executed, &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return executed, nil
}

// blockedProcs returns the names of live processes that are still parked.
func (e *Engine) blockedProcs() []string {
	var names []string
	for _, p := range e.procs {
		if !p.done {
			names = append(names, p.describe())
		}
	}
	return names
}

// DeadlockError reports that the event queue drained while simulated
// processes were still blocked waiting for conditions nobody will signal.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("simtime: deadlock at %v: %d blocked process(es): %v",
		d.Now, len(d.Blocked), d.Blocked)
}
