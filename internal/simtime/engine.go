package simtime

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so execution order is the order of scheduling.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation kernel. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	procs   []*Proc
	running bool
	stopped bool
	// panicErr records the first process panic; Run returns it.
	panicErr error
	// interrupt, when set, is polled between events (every
	// interruptEvery executions); a non-nil return aborts Run with that
	// error. It is the bridge to wall-clock concerns — context
	// cancellation, deadlines — that the virtual clock cannot see.
	interrupt      func() error
	interruptEvery int
}

// defaultInterruptEvery bounds how many events run between interrupt
// polls. Polling has real-time cost (a context's Err takes a lock), so
// it is amortized; 256 events keeps abort latency far below a
// millisecond of host time on any workload.
const defaultInterruptEvery = 256

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at time t. Scheduling in the past is an error in
// the simulation logic and panics: time only moves forward.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d means "now".
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Stop makes Run return after the currently executing event completes.
// Pending events are kept; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Fail records err as the run's failure and stops the engine; Run returns
// the first recorded failure. Event-context code (which has no process to
// panic in) uses it to surface structured errors — an impossible network
// state, an exhausted protocol — through the same path as process panics
// and deadlock reports, instead of crashing the host process.
func (e *Engine) Fail(err error) {
	if err == nil {
		return
	}
	if e.panicErr == nil {
		e.panicErr = err
	}
	e.stopped = true
}

// Failure returns the recorded failure (a process panic or an explicit
// Fail), or nil.
func (e *Engine) Failure() error { return e.panicErr }

// SetInterrupt installs check, polled every `every` events during Run
// (every <= 0 selects the default). A non-nil return value aborts Run
// with that error, leaving pending events queued and live processes
// parked — pair with KillLive to unwind them. Pass nil to remove the
// hook. check must be safe to call from the Run goroutine; it typically
// reads a context's Err, which is synchronized by the context itself.
func (e *Engine) SetInterrupt(check func() error, every int) {
	if every <= 0 {
		every = defaultInterruptEvery
	}
	e.interrupt = check
	e.interruptEvery = every
}

// KillLive condemns every live process and resumes each so its body
// unwinds with a Killed panic at its current park point (a process that
// never started is retired before its body runs). It is the goroutine
// hygiene of an aborted run: without it, an interrupted simulation
// leaks one parked goroutine per blocked rank. Call only while Run is
// not executing; the engine is not usable for further Runs afterward.
func (e *Engine) KillLive() {
	if e.running {
		panic("simtime: KillLive called while Run is executing")
	}
	for _, p := range e.procs {
		if !p.done {
			p.killed = true
			e.runProc(p)
		}
	}
}

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the clock passes limit (use Infinity for no limit). It returns
// the number of events executed and an error if, after the queue drained,
// live processes remain blocked (a deadlock in the simulated system).
func (e *Engine) Run(limit Time) (int, error) {
	if e.running {
		return 0, fmt.Errorf("simtime: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	executed := 0
	for len(e.queue) > 0 && !e.stopped {
		if e.interrupt != nil && executed%e.interruptEvery == 0 {
			if err := e.interrupt(); err != nil {
				return executed, err
			}
		}
		next := e.queue[0]
		if next.at > limit {
			e.now = limit
			return executed, nil
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
		executed++
	}
	if e.panicErr != nil {
		return executed, e.panicErr
	}
	if e.stopped {
		return executed, nil
	}
	if blocked := e.blockedProcs(); len(blocked) > 0 {
		return executed, &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return executed, nil
}

// blockedProcs returns the names of live processes that are still parked.
func (e *Engine) blockedProcs() []string {
	var names []string
	for _, p := range e.procs {
		if !p.done {
			names = append(names, p.describe())
		}
	}
	return names
}

// DeadlockError reports that the event queue drained while simulated
// processes were still blocked waiting for conditions nobody will signal.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("simtime: deadlock at %v: %d blocked process(es): %v",
		d.Now, len(d.Blocked), d.Blocked)
}
