package simtime

import "testing"

// The scheduler hot paths must not allocate in steady state: event
// buckets are pooled, proc wakeups carry no closure, and the instant
// heap reuses its backing array. These guards pin that down with
// testing.AllocsPerRun so a regression fails loudly rather than
// showing up as a 4k-rank slowdown.

// TestScheduleAllocFree: scheduling callbacks across a spread of
// instants and draining them allocates nothing once the bucket pool and
// instant heap have reached steady-state capacity.
func TestScheduleAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	cycle := func() {
		for i := 0; i < 8; i++ {
			at := e.Now().Add(Duration(i))
			for j := 0; j < 16; j++ {
				e.At(at, fn)
			}
		}
		if _, err := e.Run(Infinity); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the pool and slice capacities
	allocs := testing.AllocsPerRun(10, cycle)
	if allocs != 0 {
		t.Fatalf("steady-state schedule+run allocated %.1f times per cycle, want 0", allocs)
	}
}

// TestSleepWakeupAllocFree: a process cycling through Sleep/wakeup —
// the dominant event traffic in a rank simulation — is allocation-free
// per iteration. The run is driven in bounded windows so the infinite
// sleeper never deadlocks the engine.
func TestSleepWakeupAllocFree(t *testing.T) {
	e := NewEngine()
	e.Spawn("sleeper", func(p *Proc) {
		for {
			p.Sleep(5)
		}
	})
	var limit Time
	cycle := func() {
		limit += 50
		if _, err := e.Run(limit); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // executes the spawn event and warms the wake path
	allocs := testing.AllocsPerRun(20, cycle)
	if allocs != 0 {
		t.Fatalf("sleep/wakeup window allocated %.1f times, want 0", allocs)
	}
}

// TestBroadcastBatchAllocFree: Cond.Broadcast releasing a crowd of
// waiters is allocation-free at steady state — the waiters slice and
// the wake bucket both retain their capacity across rounds.
func TestBroadcastBatchAllocFree(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	const n = 32
	for i := 0; i < n; i++ {
		e.Spawn("w", func(p *Proc) {
			for {
				c.Wait(p, "gate")
			}
		})
	}
	e.Spawn("leader", func(p *Proc) {
		for {
			p.Sleep(5)
			c.Broadcast()
		}
	})
	var limit Time
	cycle := func() {
		limit += 50
		if _, err := e.Run(limit); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	cycle()
	allocs := testing.AllocsPerRun(10, cycle)
	if allocs != 0 {
		t.Fatalf("broadcast rounds of %d waiters allocated %.1f times, want 0", n, allocs)
	}
}
