package simtime

import "fmt"

// Proc is a cooperative simulated process: a goroutine that runs only when
// the engine hands it control and yields back whenever it blocks on a
// primitive. All Proc methods must be called from the process's own
// goroutine (inside the body passed to Spawn).
type Proc struct {
	eng    *Engine
	id     int
	name   string
	resume chan struct{}
	park   chan struct{}
	done   bool
	// killed marks a process condemned by Kill; its next resume unwinds
	// the body with a Killed panic instead of continuing.
	killed bool
	// blockedOn describes what the process is waiting for; used in
	// deadlock reports.
	blockedOn string
}

// Spawn creates a process named name whose body starts executing at the
// current virtual time (when the engine reaches that event). The body runs
// on its own goroutine but is serialized with all other simulation
// activity.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
		park:   make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			// A panicking process must still hand control back,
			// or the engine would block forever on the park
			// channel. The panic is surfaced as a Run error.
			if r := recover(); r != nil {
				if _, wasKilled := r.(Killed); !wasKilled {
					if e.panicErr == nil {
						e.panicErr = &ProcPanicError{Proc: p.name, Value: r}
					}
					e.stopped = true
				}
			}
			p.done = true
			p.park <- struct{}{}
		}()
		<-p.resume
		// A process condemned before its first resume (KillLive on an
		// aborted run) retires without ever running its body.
		if p.killed {
			panic(Killed{})
		}
		body(p)
	}()
	e.wakeAt(e.now, p)
	return p
}

// ProcPanicError reports that a simulated process panicked; the engine
// stops at the panic instant and Run returns this error.
type ProcPanicError struct {
	Proc  string
	Value any
}

func (e *ProcPanicError) Error() string {
	return fmt.Sprintf("simtime: process %s panicked: %v", e.Proc, e.Value)
}

// Killed is the value a killed process's unwind panics with. Spawn's
// recovery recognizes it and retires the goroutine silently — a kill is a
// modeled fault (crash-stop rank failure), not a logic error, so it is not
// recorded as a ProcPanicError. Bodies that must release external state on
// a crash can recover Killed themselves and re-panic.
type Killed struct{}

// Kill condemns the process: it is resumed at the current virtual time and
// unwinds with a Killed panic at its current park point instead of
// continuing its body. Killing a done or already-killed process is a
// no-op. Must be called from event context (the process is parked).
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	p.eng.wakeAt(p.eng.now, p)
}

// runProc transfers control to p and blocks until p parks again (or
// terminates). Must only be called from event context.
func (e *Engine) runProc(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.park
}

// yield parks the process and hands control back to the engine; it returns
// when some event resumes the process.
func (p *Proc) yield(reason string) {
	p.blockedOn = reason
	p.park <- struct{}{}
	<-p.resume
	if p.killed {
		p.blockedOn = "killed"
		panic(Killed{})
	}
	p.blockedOn = ""
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep blocks the process for d of virtual time. Zero or negative d
// still yields, letting events scheduled for the current instant run.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.wakeAt(p.eng.now.Add(d), p)
	p.yield("sleep")
}

func (p *Proc) describe() string {
	if p.blockedOn == "" {
		return p.name
	}
	return p.name + " (" + p.blockedOn + ")"
}

// Cond is a broadcast-style condition variable for simulated processes.
// Unlike sync.Cond there is no associated lock: the simulation is already
// serialized, so Wait/Signal/Broadcast need no further synchronization.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition bound to engine e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait parks the calling process until a subsequent Signal or Broadcast.
func (c *Cond) Wait(p *Proc, reason string) {
	c.waiters = append(c.waiters, p)
	p.yield(reason)
}

// Signal wakes the longest-waiting process, if any. The wakeup is
// delivered as an event at the current time, after the caller next yields.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.wakeAt(c.eng.now, p)
}

// Broadcast wakes every waiting process in FIFO order. The wakeups are
// enqueued as one batch: releasing N waiters costs one bucket append
// run, not N heap inserts.
func (c *Cond) Broadcast() {
	// wakeAllAt copies the procs into the event bucket synchronously,
	// so the waiters slice can be truncated in place and its capacity
	// reused by the next round of waiters.
	c.eng.wakeAllAt(c.eng.now, c.waiters)
	c.waiters = c.waiters[:0]
}

// Waiters reports how many processes are parked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Future is a one-shot completion: processes can wait on it, and exactly
// one Complete call releases them all (and all future waiters return
// immediately). Event-context code can chain work with Then.
type Future struct {
	eng       *Engine
	done      bool
	at        Time
	cond      Cond
	callbacks []func()
}

// NewFuture returns an incomplete future bound to engine e.
func NewFuture(e *Engine) *Future { return &Future{eng: e, cond: Cond{eng: e}} }

// GetFuture returns a recycled (or fresh) incomplete future. It is the
// pooled counterpart of NewFuture for high-churn protocol paths; pair it
// with PutFuture at a point where the future is provably unreachable.
func (e *Engine) GetFuture() *Future {
	if n := len(e.freeFuts); n > 0 {
		f := e.freeFuts[n-1]
		e.freeFuts = e.freeFuts[:n-1]
		return f
	}
	return NewFuture(e)
}

// PutFuture recycles f for a later GetFuture. The caller must guarantee
// that no other reference to f remains — a recycled future still awaited
// or chained elsewhere would complete someone else's operation. Only a
// completed future with no parked waiters is eligible; anything else
// panics, because it means the caller's liveness proof is wrong.
func (e *Engine) PutFuture(f *Future) {
	if !f.done || len(f.cond.waiters) != 0 {
		panic("simtime: PutFuture on a live future")
	}
	f.done = false
	f.at = 0
	f.callbacks = nil
	e.freeFuts = append(e.freeFuts, f)
}

// Complete marks the future done at the current virtual time and wakes all
// waiters. Completing twice panics: it indicates a logic error in the
// simulated protocol.
func (f *Future) Complete() {
	if f.done {
		panic("simtime: Future completed twice")
	}
	f.done = true
	f.at = f.eng.now
	f.cond.Broadcast()
	cbs := f.callbacks
	f.callbacks = nil
	for _, cb := range cbs {
		fn := cb
		f.eng.At(f.eng.now, fn)
	}
}

// Then schedules fn to run (as an event) when the future completes; if it
// already has, fn is scheduled at the current time.
func (f *Future) Then(fn func()) {
	if f.done {
		f.eng.At(f.eng.now, fn)
		return
	}
	f.callbacks = append(f.callbacks, fn)
}

// IsDone reports whether Complete has been called.
func (f *Future) IsDone() bool { return f.done }

// CompletedAt returns the time Complete was called; zero if not done.
func (f *Future) CompletedAt() Time { return f.at }

// Await blocks p until the future completes; returns immediately if it
// already has.
func (f *Future) Await(p *Proc, reason string) {
	if f.done {
		return
	}
	f.cond.Wait(p, reason)
}
