#!/bin/sh -e
# Bench guard: the repo's performance-regression gates.
#
#  1. ABFT checksum lane (BENCH_5.json): the healthy-path 8x8 1 MiB
#     allreduce with and without -verify must stay within the 3%
#     simulated-latency budget.
#  2. Structured perf gate: the canonical 8x8 1 MiB allreduce_topo run's
#     analytics report, diffed against the checked-in baseline
#     (scripts/bench_baseline.json) with paccprof — per-collective mean
#     and p99 latency plus total energy, each gated at 2%. The
#     simulation is deterministic, so any drift is a real behavioral
#     change.
#  3. Analytics overhead (BENCH_6.json): one live streaming analytics
#     subscriber on the same workload must cost <=250ns of process CPU
#     time per emitted event over a detached bus (measured min-of-10 per
#     arm, interleaved; the run-relative ratio and wall time are
#     recorded alongside).
#  4. Engine throughput & allocation gates (BENCH_8.json): the hot-path
#     8x8 1 MiB allreduce benchmark's allocs/op and events/sec, plus the
#     4096-rank allreduce/allgather events/sec, each gated against the
#     floors in scripts/perf_floor.json.
#  5. Fail-slow detection overhead (BENCH_9.json): the same canonical
#     run with -detect (per-rank compute-lag scoreboards armed) must
#     cost <=1% simulated latency — and is expected to cost exactly 0,
#     since the scoreboard is bookkeeping that never advances virtual
#     time.
#  6. Sweep journal overhead (BENCH_10.json): healthy-path submits
#     through a journaled service (durable ack: accepted record fsynced
#     before the ticket returns) vs an unjournaled one, against real
#     simulation work, min-of-5 interleaved. Budget 50% — loose by
#     design, because CI fsync latency varies; the gate catches the
#     journal landing on the execution path, not disk speed.
cd "$(dirname "$0")/.."

run() {
	go run ./cmd/osu -op allreduce_topo -procs 64 -ppn 8 -size 1M -iters 5 "$@" |
		awk '/^1048576/ {print $2}'
}

# --- 1. checksum overhead ------------------------------------------------
plain=$(run)
checked=$(run -verify)
overhead=$(awk -v p="$plain" -v c="$checked" 'BEGIN {printf "%.4f", c/p - 1}')

cat >BENCH_5.json <<EOF
{
  "benchmark": "allreduce_topo, 8 nodes x 8 ranks/node, 1 MiB, healthy path",
  "plain_latency_us": $plain,
  "checked_latency_us": $checked,
  "checksum_overhead": $overhead,
  "budget": 0.03
}
EOF

if ! awk -v o="$overhead" 'BEGIN {exit !(o <= 0.03 && o >= 0)}'; then
	echo "bench guard: checksum overhead $overhead outside [0, 0.03]" \
		"(plain ${plain}us, checked ${checked}us)" >&2
	exit 1
fi
echo "bench guard: checksum overhead $overhead within the 3% budget; wrote BENCH_5.json"

# --- 2. structured perf-regression gate (paccprof diff) ------------------
# The gate is only as good as its baseline: a missing or schema-stale
# baseline must fail loudly, not silently diff against garbage.
baseline=scripts/bench_baseline.json
if [ ! -f "$baseline" ]; then
	echo "bench guard: baseline $baseline is missing." >&2
	echo "  Regenerate it from a known-good checkout with:" >&2
	echo "    go run ./cmd/osu -op allreduce_topo -procs 64 -ppn 8 -size 1M -iters 5 -report $baseline" >&2
	echo "  then commit the result. Do NOT regenerate on a branch whose perf you are trying to gate." >&2
	exit 1
fi
want_schema='pacc.analyze.report/v1'
if ! grep -q "\"schema\": *\"$want_schema\"" "$baseline"; then
	echo "bench guard: baseline $baseline does not declare schema \"$want_schema\"" \
		"(found: $(grep -o '"schema"[^,}]*' "$baseline" | head -1 || echo none))." >&2
	echo "  The analytics report format has moved; regenerate the baseline from a known-good checkout with:" >&2
	echo "    go run ./cmd/osu -op allreduce_topo -procs 64 -ppn 8 -size 1M -iters 5 -report $baseline" >&2
	exit 1
fi

run -report bench_report.json >/dev/null
diff_rc=0
go run ./cmd/paccprof diff -mean-pct 2 -p99-pct 2 -energy-pct 2 \
	"$baseline" bench_report.json | tee bench_diff.txt || diff_rc=$?
regressions=$(awk '/regression\(s\)$/ {print $1}' bench_diff.txt)

# --- 3. analytics-subscriber overhead ------------------------------------
overhead_rc=0
PACC_BENCH_OUT="$PWD/bench6_overhead.json" \
	go test ./internal/analyze -run TestAnalyticsOverheadBudget -count=1 -v ||
	overhead_rc=$?

{
	echo '{'
	echo '  "overhead": '"$(cat bench6_overhead.json)",
	echo '  "diff_gate": {'
	echo '    "baseline": "scripts/bench_baseline.json",'
	echo '    "thresholds_pct": {"mean": 2, "p99": 2, "energy": 2},'
	echo "    \"regressions\": ${regressions:-0}"
	echo '  }'
	echo '}'
} >BENCH_6.json
rm -f bench6_overhead.json bench_diff.txt bench_report.json

if [ "$diff_rc" -ne 0 ]; then
	echo "bench guard: paccprof diff found ${regressions:-?} regression(s) against the baseline" >&2
	exit 1
fi
if [ "$overhead_rc" -ne 0 ]; then
	echo "bench guard: analytics-subscriber overhead exceeded the 250ns-per-event budget (see BENCH_6.json)" >&2
	exit 1
fi
echo "bench guard: perf diff clean and analytics overhead within the per-event budget; wrote BENCH_6.json"

# --- 4. engine throughput & allocation gates -----------------------------
# Three deterministic workloads from internal/collective/perf_bench_test.go:
# the 8x8 1 MiB allreduce (allocs/op ceiling + events/sec floor) and the
# 4096-rank recursive-doubling allreduce/allgather (events/sec floors).
# Floors live in scripts/perf_floor.json so regenerating them is a
# reviewed, committed act — never an in-run side effect.
floor=scripts/perf_floor.json
if [ ! -f "$floor" ]; then
	echo "bench guard: perf floor $floor is missing." >&2
	echo "  Regenerate it from a known-good checkout (see the comment field" >&2
	echo "  of a previous revision, or scripts/perf_floor.json in git history):" >&2
	echo "    go test ./internal/collective -run xxx -bench 'BenchmarkHotPathAllreduce8x8_1MiB|BenchmarkScale4096' -benchtime 1x -benchmem -count=1" >&2
	echo "  then set events/sec floors to ~25% of measured and the allocs/op" >&2
	echo "  ceiling to ~5% above measured, and commit the result." >&2
	exit 1
fi
jget() {
	awk -F'[:,]' -v k="\"$1\"" '$1 ~ k {gsub(/[ \t]/, "", $2); print $2}' "$floor"
}
max_allocs=$(jget hot_path_max_allocs_per_op)
min_hot_eps=$(jget hot_path_min_events_per_sec)
min_ar_eps=$(jget scale4096_allreduce_min_events_per_sec)
min_ag_eps=$(jget scale4096_allgather_min_events_per_sec)
if [ -z "$max_allocs" ] || [ -z "$min_hot_eps" ] || [ -z "$min_ar_eps" ] || [ -z "$min_ag_eps" ]; then
	echo "bench guard: $floor is missing one of the four gate keys" \
		"(hot_path_max_allocs_per_op, hot_path_min_events_per_sec," \
		"scale4096_allreduce_min_events_per_sec, scale4096_allgather_min_events_per_sec)." >&2
	exit 1
fi

go test ./internal/collective -run xxx \
	-bench 'BenchmarkHotPathAllreduce8x8_1MiB|BenchmarkScale4096' \
	-benchtime 1x -benchmem -timeout 30m -count=1 >bench8_raw.txt
# Benchmark lines read "Name N t ns/op v events/sec b B/op a allocs/op";
# pick each metric by the unit that follows it.
bmetric() {
	awk -v name="$1" -v unit="$2" '
		$1 ~ name { for (i = 2; i < NF; i++) if ($(i + 1) == unit) { print $i; exit } }
	' bench8_raw.txt
}
hot_allocs=$(bmetric '^BenchmarkHotPathAllreduce8x8_1MiB' allocs/op)
hot_eps=$(bmetric '^BenchmarkHotPathAllreduce8x8_1MiB' events/sec)
ar_eps=$(bmetric '^BenchmarkScale4096AllreduceRD' events/sec)
ag_eps=$(bmetric '^BenchmarkScale4096AllgatherRD' events/sec)
rm -f bench8_raw.txt
if [ -z "$hot_allocs" ] || [ -z "$hot_eps" ] || [ -z "$ar_eps" ] || [ -z "$ag_eps" ]; then
	echo "bench guard: failed to parse the engine benchmarks" \
		"(hot_allocs=$hot_allocs hot_eps=$hot_eps ar_eps=$ar_eps ag_eps=$ag_eps)" >&2
	exit 1
fi

cat >BENCH_8.json <<EOF
{
  "benchmark": "engine throughput and allocation gates (perf_bench_test.go)",
  "floors": "scripts/perf_floor.json",
  "hot_path_allreduce_8x8_1mib": {
    "allocs_per_op": $hot_allocs,
    "max_allocs_per_op": $max_allocs,
    "events_per_sec": $hot_eps,
    "min_events_per_sec": $min_hot_eps
  },
  "scale_4096_allreduce_rd": {
    "events_per_sec": $ar_eps,
    "min_events_per_sec": $min_ar_eps
  },
  "scale_4096_allgather_rd": {
    "events_per_sec": $ag_eps,
    "min_events_per_sec": $min_ag_eps
  }
}
EOF

perf_fail=0
gate() { # gate <label> <measured> <bound> <cmp>
	if ! awk -v m="$2" -v b="$3" -v c="$4" \
		'BEGIN {exit !((c == "max" && m <= b) || (c == "min" && m >= b))}'; then
		echo "bench guard: $1 = $2 violates the $4 bound $3 (see BENCH_8.json)." >&2
		perf_fail=1
	fi
}
gate "hot-path allocs/op" "$hot_allocs" "$max_allocs" max
gate "hot-path events/sec" "$hot_eps" "$min_hot_eps" min
gate "4096-rank allreduce events/sec" "$ar_eps" "$min_ar_eps" min
gate "4096-rank allgather events/sec" "$ag_eps" "$min_ag_eps" min
if [ "$perf_fail" -ne 0 ]; then
	echo "bench guard: engine perf gate failed. If the regression is intended" >&2
	echo "  (e.g. a feature that legitimately costs allocations), regenerate the" >&2
	echo "  floors from this checkout per the comment in scripts/perf_floor.json" >&2
	echo "  and commit them with the change that pays the cost." >&2
	exit 1
fi
echo "bench guard: engine throughput and allocation gates met; wrote BENCH_8.json"

# --- 5. fail-slow detection overhead --------------------------------------
# Reuses the section-1 plain measurement as the baseline. The detection
# path (DESIGN.md §13) folds lag samples into a scoreboard during
# busy-compute and piggybacks beacons on sends, none of which is a
# simulated-time cost, so the measured overhead should be exactly 0; the
# 1% budget only leaves room for a future detector that legitimately
# pays simulated time, not for accidental slow-path work.
detected=$(run -detect)
d_overhead=$(awk -v p="$plain" -v d="$detected" 'BEGIN {printf "%.4f", d/p - 1}')

cat >BENCH_9.json <<EOF
{
  "benchmark": "allreduce_topo, 8 nodes x 8 ranks/node, 1 MiB, fail-slow detection armed",
  "plain_latency_us": $plain,
  "detect_latency_us": $detected,
  "detect_overhead": $d_overhead,
  "budget": 0.01
}
EOF

if ! awk -v o="$d_overhead" 'BEGIN {exit !(o <= 0.01 && o >= 0)}'; then
	echo "bench guard: fail-slow detection overhead $d_overhead outside [0, 0.01]" \
		"(plain ${plain}us, detect ${detected}us)" >&2
	exit 1
fi
echo "bench guard: fail-slow detection overhead $d_overhead within the 1% budget; wrote BENCH_9.json"

# --- 6. sweep journal (durable ack) overhead -------------------------------
# The test both measures and gates (DESIGN.md §14): a failure here means
# durable acks got expensive enough to suggest the journal is doing work
# it shouldn't on the healthy path.
journal_rc=0
PACC_BENCH_OUT="$PWD/bench10_overhead.json" \
	go test ./internal/sweep -run TestJournalOverheadBudget -count=1 -v ||
	journal_rc=$?
mv bench10_overhead.json BENCH_10.json
if [ "$journal_rc" -ne 0 ]; then
	echo "bench guard: sweep journal overhead exceeded the 50% budget (see BENCH_10.json)" >&2
	exit 1
fi
echo "bench guard: sweep journal overhead within the 50% budget; wrote BENCH_10.json"
