#!/bin/sh -e
# Bench guard for the data-integrity work: the healthy-path cost of the
# ABFT checksum lane. Runs the 8 nodes x 8 ranks/node 1 MiB allreduce
# with and without -verify, records both simulated latencies and the
# overhead in BENCH_5.json, and fails when the overhead exceeds the 3%
# budget — the checksum shadow rides the existing message schedule, so
# it must only ever cost the verification folds.
cd "$(dirname "$0")/.."

run() {
	go run ./cmd/osu -op allreduce_topo -procs 64 -ppn 8 -size 1M -iters 5 "$@" |
		awk '/^1048576/ {print $2}'
}

plain=$(run)
checked=$(run -verify)
overhead=$(awk -v p="$plain" -v c="$checked" 'BEGIN {printf "%.4f", c/p - 1}')

cat >BENCH_5.json <<EOF
{
  "benchmark": "allreduce_topo, 8 nodes x 8 ranks/node, 1 MiB, healthy path",
  "plain_latency_us": $plain,
  "checked_latency_us": $checked,
  "checksum_overhead": $overhead,
  "budget": 0.03
}
EOF

if ! awk -v o="$overhead" 'BEGIN {exit !(o <= 0.03 && o >= 0)}'; then
	echo "bench guard: checksum overhead $overhead outside [0, 0.03]" \
		"(plain ${plain}us, checked ${checked}us)" >&2
	exit 1
fi
echo "bench guard: checksum overhead $overhead within the 3% budget; wrote BENCH_5.json"
