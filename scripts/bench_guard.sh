#!/bin/sh -e
# Bench guard: the repo's performance-regression gates.
#
#  1. ABFT checksum lane (BENCH_5.json): the healthy-path 8x8 1 MiB
#     allreduce with and without -verify must stay within the 3%
#     simulated-latency budget.
#  2. Structured perf gate: the canonical 8x8 1 MiB allreduce_topo run's
#     analytics report, diffed against the checked-in baseline
#     (scripts/bench_baseline.json) with paccprof — per-collective mean
#     and p99 latency plus total energy, each gated at 2%. The
#     simulation is deterministic, so any drift is a real behavioral
#     change.
#  3. Analytics overhead (BENCH_6.json): one live streaming analytics
#     subscriber on the same workload must cost <=2% process CPU time
#     over a detached bus (measured min-of-10 per arm, interleaved;
#     wall time recorded alongside).
cd "$(dirname "$0")/.."

run() {
	go run ./cmd/osu -op allreduce_topo -procs 64 -ppn 8 -size 1M -iters 5 "$@" |
		awk '/^1048576/ {print $2}'
}

# --- 1. checksum overhead ------------------------------------------------
plain=$(run)
checked=$(run -verify)
overhead=$(awk -v p="$plain" -v c="$checked" 'BEGIN {printf "%.4f", c/p - 1}')

cat >BENCH_5.json <<EOF
{
  "benchmark": "allreduce_topo, 8 nodes x 8 ranks/node, 1 MiB, healthy path",
  "plain_latency_us": $plain,
  "checked_latency_us": $checked,
  "checksum_overhead": $overhead,
  "budget": 0.03
}
EOF

if ! awk -v o="$overhead" 'BEGIN {exit !(o <= 0.03 && o >= 0)}'; then
	echo "bench guard: checksum overhead $overhead outside [0, 0.03]" \
		"(plain ${plain}us, checked ${checked}us)" >&2
	exit 1
fi
echo "bench guard: checksum overhead $overhead within the 3% budget; wrote BENCH_5.json"

# --- 2. structured perf-regression gate (paccprof diff) ------------------
# The gate is only as good as its baseline: a missing or schema-stale
# baseline must fail loudly, not silently diff against garbage.
baseline=scripts/bench_baseline.json
if [ ! -f "$baseline" ]; then
	echo "bench guard: baseline $baseline is missing." >&2
	echo "  Regenerate it from a known-good checkout with:" >&2
	echo "    go run ./cmd/osu -op allreduce_topo -procs 64 -ppn 8 -size 1M -iters 5 -report $baseline" >&2
	echo "  then commit the result. Do NOT regenerate on a branch whose perf you are trying to gate." >&2
	exit 1
fi
want_schema='pacc.analyze.report/v1'
if ! grep -q "\"schema\": *\"$want_schema\"" "$baseline"; then
	echo "bench guard: baseline $baseline does not declare schema \"$want_schema\"" \
		"(found: $(grep -o '"schema"[^,}]*' "$baseline" | head -1 || echo none))." >&2
	echo "  The analytics report format has moved; regenerate the baseline from a known-good checkout with:" >&2
	echo "    go run ./cmd/osu -op allreduce_topo -procs 64 -ppn 8 -size 1M -iters 5 -report $baseline" >&2
	exit 1
fi

run -report bench_report.json >/dev/null
diff_rc=0
go run ./cmd/paccprof diff -mean-pct 2 -p99-pct 2 -energy-pct 2 \
	"$baseline" bench_report.json | tee bench_diff.txt || diff_rc=$?
regressions=$(awk '/regression\(s\)$/ {print $1}' bench_diff.txt)

# --- 3. analytics-subscriber overhead ------------------------------------
overhead_rc=0
PACC_BENCH_OUT="$PWD/bench6_overhead.json" \
	go test ./internal/analyze -run TestAnalyticsOverheadBudget -count=1 -v ||
	overhead_rc=$?

{
	echo '{'
	echo '  "overhead": '"$(cat bench6_overhead.json)",
	echo '  "diff_gate": {'
	echo '    "baseline": "scripts/bench_baseline.json",'
	echo '    "thresholds_pct": {"mean": 2, "p99": 2, "energy": 2},'
	echo "    \"regressions\": ${regressions:-0}"
	echo '  }'
	echo '}'
} >BENCH_6.json
rm -f bench6_overhead.json bench_diff.txt bench_report.json

if [ "$diff_rc" -ne 0 ]; then
	echo "bench guard: paccprof diff found ${regressions:-?} regression(s) against the baseline" >&2
	exit 1
fi
if [ "$overhead_rc" -ne 0 ]; then
	echo "bench guard: analytics-subscriber overhead exceeded the 2% budget (see BENCH_6.json)" >&2
	exit 1
fi
echo "bench guard: perf diff clean and analytics overhead within the 2% budget; wrote BENCH_6.json"
