// Package pacc (Power-Aware Collective Communication) reproduces, as a
// simulation-backed Go library, the system of Kandalla, Mancini, Sur and
// Panda, "Designing Power-Aware Collective Communication Algorithms for
// InfiniBand Clusters" (ICPP 2010).
//
// The library simulates an InfiniBand cluster — nodes, sockets, cores,
// a QDR-like switched fabric, per-core DVFS (P-states) and CPU throttling
// (T-states) — and runs MPI-style collective algorithms over it: the
// MVAPICH2 defaults and the paper's power-aware redesigns, which bracket
// every collective with DVFS and schedule socket-level throttling through
// the communication phases. Per-core energy is integrated exactly, so
// experiments report latency, power draw and energy for each scheme.
//
// Quick start:
//
//	cfg := pacc.DefaultConfig()             // 8 nodes x 2 sockets x 4 cores
//	w, _ := pacc.NewWorld(cfg)
//	w.Launch(func(r *pacc.Rank) {
//		c := pacc.CommWorld(r)
//		pacc.Alltoall(c, 256<<10, pacc.CollectiveOptions{Power: pacc.Proposed})
//	})
//	elapsed, _ := w.Run()
//	fmt.Println(elapsed, w.Station().EnergyJoules())
//
// The cmd/powercoll tool regenerates every figure and table of the
// paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package pacc

import (
	"io"

	"pacc/internal/analyze"
	"pacc/internal/collective"
	"pacc/internal/experiments"
	"pacc/internal/fault"
	"pacc/internal/model"
	"pacc/internal/mpi"
	"pacc/internal/network"
	"pacc/internal/plan"
	"pacc/internal/power"
	"pacc/internal/simtime"
	"pacc/internal/topology"
	"pacc/internal/trace"
	"pacc/internal/workload"
)

// Core simulation types.
type (
	// Config assembles a simulated MPI job: topology, network, power
	// model, rank layout and progression mode.
	Config = mpi.Config
	// World is one simulated job.
	World = mpi.World
	// Rank is one MPI process.
	Rank = mpi.Rank
	// Comm is a communicator handle.
	Comm = mpi.Comm
	// Request is a nonblocking-operation handle.
	Request = mpi.Request
	// ProgressionMode selects polling or blocking waits.
	ProgressionMode = mpi.ProgressionMode
	// PowerModel holds the DVFS/throttling power calibration.
	PowerModel = power.Model
	// TState is a CPU throttling level (T0..T7).
	TState = power.TState
	// PowerMode selects a power scheme for one collective call.
	PowerMode = collective.PowerMode
	// CollectiveOptions tunes one collective call.
	CollectiveOptions = collective.Options
	// Trace accumulates per-phase timings of collective calls.
	Trace = collective.Trace
	// TopologyConfig describes the cluster shape.
	TopologyConfig = topology.Config
	// BindPolicy selects the rank-to-core binding.
	BindPolicy = topology.BindPolicy
	// App is a runnable application skeleton.
	App = workload.App
	// Report summarizes an application run.
	Report = workload.Report
	// ModelParams holds the paper's analytical model constants.
	ModelParams = model.Params
	// ExperimentSpec describes one registered paper experiment.
	ExperimentSpec = experiments.Spec
	// ExperimentResult is an experiment's output.
	ExperimentResult = experiments.Result
	// ExperimentOptions tunes an experiment run.
	ExperimentOptions = experiments.Options
	// FaultSpec declares a deterministic fault-injection schedule (set it
	// on Config.Fault, or parse one with ParseFaultSpec).
	FaultSpec = fault.Spec
	// LinkFault is one scheduled link degradation/down window.
	LinkFault = fault.LinkFault
	// Crash schedules a permanent crash-stop failure of one rank.
	Crash = fault.Crash
	// Straggler marks one rank as computing slower than its peers.
	Straggler = fault.Straggler
	// Slow schedules a windowed fail-slow (gray failure): the rank
	// computes Factor times slower inside [Start, Start+Duration) while
	// still making progress. A slow= clause arms the fail-slow detector
	// (see DESIGN.md §13).
	Slow = fault.Slow
	// MemBurst schedules a time-windowed memory-corruption burst: bit
	// flips in reduction buffers that the transport ICRC cannot see (only
	// the checked collectives catch them).
	MemBurst = fault.MemBurst
	// PeerFailedError reports an operation aborted because the peer rank
	// crashed (detected by the ack/heartbeat timeout).
	PeerFailedError = mpi.PeerFailedError
	// CommRevokedError reports an operation aborted because the
	// communicator was revoked during recovery.
	CommRevokedError = mpi.CommRevokedError
	// IntegrityError reports a protocol message that exhausted its retry
	// budget without a clean delivery (lost, or ICRC-rejected in flight).
	IntegrityError = mpi.IntegrityError
	// CanceledError reports a run aborted by its context (cancellation or
	// deadline; see World.RunContext). errors.Is against context.Canceled
	// or context.DeadlineExceeded classifies the cause.
	CanceledError = mpi.CanceledError
	// WatchdogError reports a run aborted by the no-progress watchdog
	// (Config.WatchdogTimeout): simulated time advanced past the limit
	// with no message delivered anywhere. Carries a per-rank diagnostic
	// dump of compute lag, progress beacons and in-flight state.
	WatchdogError = simtime.WatchdogError
	// VerificationError reports an ABFT checksum mismatch caught by a
	// checked collective — corruption that happened in memory, past the
	// transport's ICRC.
	VerificationError = collective.VerificationError
	// AnalysisReport is the post-run analytics report: critical paths,
	// per-rank slack, phase × power-state energy attribution (see
	// internal/analyze and DESIGN.md §10). Obtain with ObsSession.Report.
	AnalysisReport = analyze.Report
	// AnalysisOptions tunes one analysis run.
	AnalysisOptions = analyze.Options
	// AnalysisDiff is the outcome of comparing two analytics reports.
	AnalysisDiff = analyze.DiffResult
	// DiffThresholds are the regression gates of a report diff.
	DiffThresholds = analyze.Thresholds
)

// ReadAnalysisReport parses a report written by ObsSession.WriteReport
// (or cmd/paccprof).
func ReadAnalysisReport(r io.Reader) (*AnalysisReport, error) {
	return analyze.ReadReport(r)
}

// DiffReports compares two analytics reports under the given
// regression thresholds (see cmd/paccprof diff).
func DiffReports(base, next *AnalysisReport, th DiffThresholds) *AnalysisDiff {
	return analyze.Diff(base, next, th)
}

// Progression modes.
const (
	Polling  = mpi.Polling
	Blocking = mpi.Blocking
)

// Power schemes (the paper's three comparison points).
const (
	NoPower     = collective.NoPower
	FreqScaling = collective.FreqScaling
	Proposed    = collective.Proposed
)

// Binding policies.
const (
	BindBunch      = topology.BindBunch
	BindScatter    = topology.BindScatter
	BindSequential = topology.BindSequential
)

// DefaultConfig returns the paper's testbed: 8 Nehalem-style nodes of two
// quad-core sockets, InfiniBand QDR, 64 ranks bunch-bound, polling mode.
func DefaultConfig() Config { return mpi.DefaultConfig() }

// DefaultPowerModel returns the calibrated power model (≈2.3 KW loaded).
func DefaultPowerModel() *PowerModel { return power.DefaultModel() }

// LinkPowerConfig calibrates per-port network power and dynamic link
// sleep states (set it on Config.Net.LinkPower).
type LinkPowerConfig = network.LinkPowerConfig

// DefaultLinkPower returns QDR-era per-port power constants with dynamic
// sleep enabled.
func DefaultLinkPower() LinkPowerConfig { return network.DefaultLinkPower() }

// NewWorld validates cfg and builds the simulated job. Execute with
// World.Run, or World.RunContext to bound the run by a context —
// cancellation and deadlines abort cleanly with a typed *CanceledError.
func NewWorld(cfg Config) (*World, error) { return mpi.NewWorld(cfg) }

// ParseFaultSpec parses a -fault command-line spec: semicolon-separated
// key=value clauses, e.g.
//
//	"seed=7;msgloss=0.02;degrade=node0-up@0.3:200us+2ms;straggler=1@1.5;retry=7"
//	"crash=5@2ms;detect=200us"  // rank 5 dies at 2ms, detected 200µs later
//
// See the fault package (and DESIGN.md) for the full clause list. The
// returned spec validates clean and can be set on Config.Fault.
func ParseFaultSpec(src string) (*FaultSpec, error) { return fault.Parse(src) }

// LoadConfig reads and validates a JSON configuration file (a missing
// power model defaults).
func LoadConfig(path string) (Config, error) { return mpi.LoadConfig(path) }

// SaveConfig writes a configuration as indented JSON.
func SaveConfig(path string, cfg Config) error { return mpi.SaveConfig(path, cfg) }

// CommWorld returns the communicator over all ranks (call from a rank
// body).
func CommWorld(r *Rank) *Comm { return mpi.CommWorld(r) }

// WaitAll completes a set of requests in order (nil entries are skipped).
func WaitAll(reqs ...*Request) { mpi.WaitAll(reqs...) }

// NewTrace returns an empty phase-timing trace.
func NewTrace() *Trace { return collective.NewTrace() }

// TraceRecorder records per-core power-state timelines for Chrome-trace
// export (chrome://tracing / Perfetto).
type TraceRecorder = trace.Recorder

// AttachTrace hooks every core of the world for timeline recording; call
// before Launch. Export with WriteChromeTrace after Run.
func AttachTrace(w *World) *TraceRecorder {
	return trace.Attach(w.Station(), w.Config().Topo.CoresPerNode())
}

// Collective operations (SPMD: every rank of the communicator calls them
// with identical arguments). Every entry point validates its arguments
// (positive sizes, root in range) and returns an error for malformed
// calls; plan-backed entries also surface plan build/execution errors.

// Alltoall performs a personalized all-to-all exchange of bytes per pair.
func Alltoall(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.Alltoall(c, bytes, opt)
}

// Alltoallv performs a personalized exchange with per-pair sizes
// (zero-size pairs are legal, negative sizes rejected).
func Alltoallv(c *Comm, sizeOf func(src, dst int) int64, opt CollectiveOptions) error {
	return collective.Alltoallv(c, sizeOf, opt)
}

// AlltoallPairwise forces the pairwise-exchange algorithm.
func AlltoallPairwise(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.AlltoallPairwise(c, bytes, opt)
}

// AlltoallBruck forces the hypercube algorithm.
func AlltoallBruck(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.AlltoallBruck(c, bytes, opt)
}

// Bcast broadcasts from root with the multi-core aware algorithm.
func Bcast(c *Comm, root int, bytes int64, opt CollectiveOptions) error {
	return collective.Bcast(c, root, bytes, opt)
}

// BcastBinomial broadcasts with the flat binomial tree.
func BcastBinomial(c *Comm, root int, bytes int64, opt CollectiveOptions) error {
	return collective.BcastBinomial(c, root, bytes, opt)
}

// Reduce combines onto root with the multi-core aware algorithm.
func Reduce(c *Comm, root int, bytes int64, opt CollectiveOptions) error {
	return collective.Reduce(c, root, bytes, opt)
}

// Allgather gathers bytes from every rank to every rank.
func Allgather(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.Allgather(c, bytes, opt)
}

// AllgatherRing forces the flat ring allgather.
func AllgatherRing(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.AllgatherRing(c, bytes, opt)
}

// AllgatherRD forces the recursive-doubling allgather.
func AllgatherRD(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.AllgatherRD(c, bytes, opt)
}

// Allreduce combines bytes across all ranks, result everywhere.
func Allreduce(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.Allreduce(c, bytes, opt)
}

// AllreduceRD forces the recursive-doubling allreduce.
func AllreduceRD(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.AllreduceRD(c, bytes, opt)
}

// IsFailure reports whether err is a crash-stop failure (PeerFailedError
// or CommRevokedError) — the class of errors ULFM-style recovery consumes.
func IsFailure(err error) bool { return mpi.IsFailure(err) }

// IsIntegrity reports whether err stems from detected data corruption at
// any layer: a transport message undeliverable within its retry budget
// (IntegrityError), an ABFT checksum mismatch (VerificationError), or a
// tainted plan verification step. Resilient collectives consume these
// like failures; when one escapes, the data never did.
func IsIntegrity(err error) bool { return collective.IsIntegrity(err) }

// RunResilient runs body over c with ULFM-style crash recovery: on a
// failure every survivor revokes, agrees on the failed set, restores
// fmax/T0, shrinks the communicator and retries body on the survivor
// group. Returns the communicator of the successful round.
func RunResilient(c *Comm, body func(*Comm) error) (*Comm, error) {
	return collective.RunResilient(c, body)
}

// AllreduceSumFT is the fault-tolerant allreduce: every member
// contributes v and the survivors of any crash-stop failures converge on
// the sum over the final group, returned with the survivor communicator.
func AllreduceSumFT(c *Comm, bytes int64, v float64, opt CollectiveOptions) (float64, *Comm, error) {
	return collective.AllreduceSumFT(c, bytes, v, opt)
}

// AllreduceFT is the plan-backed fault-tolerant allreduce: every recovery
// round rebuilds, re-verifies and re-executes a schedule for the current
// survivor group.
func AllreduceFT(c *Comm, bytes int64, opt CollectiveOptions) (*Comm, error) {
	return collective.AllreduceFT(c, bytes, opt)
}

// AllreduceSumChecked is AllreduceSum with ABFT self-verification: a
// checksum shadow rides the same message schedule and the result is
// verified before it is returned — a corrupted value surfaces as a
// VerificationError, never as a silently wrong sum.
func AllreduceSumChecked(c *Comm, bytes int64, v float64, opt CollectiveOptions) (float64, error) {
	return collective.AllreduceSumChecked(c, bytes, v, opt)
}

// AllreduceSumFTChecked combines the checked allreduce with ULFM-style
// recovery: a verification failure is treated like a crashed round —
// revoke, agree, retry — so transient corruption costs retries, not
// correctness. The error after an exhausted budget stays classifiable
// with IsIntegrity.
func AllreduceSumFTChecked(c *Comm, bytes int64, v float64, opt CollectiveOptions) (float64, *Comm, error) {
	return collective.AllreduceSumFTChecked(c, bytes, v, opt)
}

// Gather collects per-rank blocks onto root.
func Gather(c *Comm, root int, bytes int64, opt CollectiveOptions) error {
	return collective.Gather(c, root, bytes, opt)
}

// Scatter distributes per-rank blocks from root.
func Scatter(c *Comm, root int, bytes int64, opt CollectiveOptions) error {
	return collective.Scatter(c, root, bytes, opt)
}

// Barrier synchronizes the communicator.
func Barrier(c *Comm) { collective.Barrier(c) }

// ScatterTopoAware distributes blocks through the rack hierarchy (the
// paper's §VIII topology-aware direction), optionally throttling whole
// racks during the inter-rack phase.
func ScatterTopoAware(c *Comm, root int, bytes int64, opt CollectiveOptions) error {
	return collective.ScatterTopoAware(c, root, bytes, opt)
}

// GatherTopoAware collects blocks through the rack hierarchy.
func GatherTopoAware(c *Comm, root int, bytes int64, opt CollectiveOptions) error {
	return collective.GatherTopoAware(c, root, bytes, opt)
}

// BcastTopoAware broadcasts through the rack hierarchy.
func BcastTopoAware(c *Comm, root int, bytes int64, opt CollectiveOptions) error {
	return collective.BcastTopoAware(c, root, bytes, opt)
}

// AllreduceTopoAware combines bytes through the node/rack hierarchy,
// falling back to a contention-minimal ring among leaders when the
// fabric reports degraded links (fault-aware jobs only).
func AllreduceTopoAware(c *Comm, bytes int64, opt CollectiveOptions) error {
	return collective.AllreduceTopoAware(c, bytes, opt)
}

// AllreduceSum is AllreduceTopoAware carrying a real float64 sum through
// the simulated message schedule: every rank contributes v and receives
// the global sum, so callers can verify end-to-end data correctness
// under injected faults.
func AllreduceSum(c *Comm, bytes int64, v float64, opt CollectiveOptions) (float64, error) {
	return collective.AllreduceSum(c, bytes, v, opt)
}

// Communication plans (the schedule IR behind the plan-backed
// collectives; see internal/plan and DESIGN.md §7).

// CommPlan is one built communication schedule.
type CommPlan = plan.Plan

// PlanBuilderSpec names one registered schedule builder and the
// collective family it implements.
type PlanBuilderSpec struct{ Name, Op string }

// PlanAuto selects the cheapest registered schedule by predicted cost
// when set as CollectiveOptions.Plan.
const PlanAuto = collective.PlanAuto

// Plan-selection objectives (CollectiveOptions.PlanObjective).
const (
	SelectByLatency = collective.SelectByLatency
	SelectByEnergy  = collective.SelectByEnergy
)

// PlanBuilders lists every registered schedule builder.
func PlanBuilders() []PlanBuilderSpec {
	var out []PlanBuilderSpec
	for _, b := range plan.Builders() {
		out = append(out, PlanBuilderSpec{Name: b.Name, Op: b.Op})
	}
	return out
}

// VerifyPlan statically checks a plan's invariants: tag/peer matching,
// deadlock-freedom under rendezvous semantics, declared data coverage,
// and power-state balance.
func VerifyPlan(p *CommPlan) error { return plan.Verify(p) }

// Workloads (the paper's applications).

// FTClassC is the NAS FT class C kernel skeleton.
func FTClassC() App { return workload.FT(workload.FTClassC) }

// ISClassC is the NAS IS class C kernel skeleton.
func ISClassC() App { return workload.IS(workload.ISClassC) }

// NASApp resolves any provided NPB kernel skeleton by its NPB name:
// ft/is (the paper's kernels) and cg/mg (library breadth), classes A-C,
// e.g. "ft.C" or "mg.B".
func NASApp(name string) (App, error) {
	if app, err := workload.NASApp(name); err == nil {
		return app, nil
	}
	return workload.NASExtraApp(name)
}

// CPMDApp returns the CPMD skeleton for one of the paper's datasets
// ("wat-32-inp-1", "wat-32-inp-2", "ta-inp-md").
func CPMDApp(dataset string) (App, error) {
	ds, err := workload.CPMDDatasetByName(dataset)
	if err != nil {
		return App{}, err
	}
	return workload.CPMD(ds), nil
}

// ClusterFor returns the paper's job configuration for 32 or 64 ranks.
func ClusterFor(procs int) (Config, error) { return workload.ClusterFor(procs) }

// RunApp executes an application skeleton under the given power scheme.
func RunApp(app App, cfg Config, mode PowerMode) (Report, error) {
	return workload.Run(app, cfg, mode)
}

// Analytical model.

// ModelFromConfig derives the paper's eq (1)-(8) parameters from a
// simulator configuration.
func ModelFromConfig(cfg Config) ModelParams { return model.FromConfig(cfg) }

// Experiments (the paper's figures and tables).

// Experiments lists every registered paper experiment in order.
func Experiments() []ExperimentSpec { return experiments.All() }

// RunExperiment runs one experiment by id ("fig2a" ... "table2",
// ablations) at the given scale (1.0 = paper fidelity).
func RunExperiment(id string, scale float64) (*ExperimentResult, error) {
	spec, ok := experiments.Lookup(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return spec.Run(experiments.Options{Scale: scale})
}

// UnknownExperimentError reports an unregistered experiment id.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "pacc: unknown experiment " + e.ID
}
