package pacc

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

func TestFacadeTopoAwareAndWaitAll(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Net.NodesPerRack = 4
	cfg.Net.RackUplinkBytesPerSec = cfg.Net.LinkBytesPerSec
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *Rank) {
		c := CommWorld(r)
		ScatterTopoAware(c, 0, 32<<10, CollectiveOptions{Power: Proposed})
		GatherTopoAware(c, 0, 32<<10, CollectiveOptions{})
		BcastTopoAware(c, 0, 32<<10, CollectiveOptions{})
		// WaitAll over explicit requests.
		if r.ID() == 0 {
			q := r.Isend(8, 1024, 99)
			WaitAll(q, nil)
		}
		if r.ID() == 8 {
			r.Recv(0, 1024, 99)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Fabric().InterRackBytes() == 0 {
		t.Fatal("rack fabric saw no inter-rack traffic")
	}
	if w.Stats().Messages() == 0 {
		t.Fatal("message stats empty")
	}
}

func TestFacadeConfigPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	cfg := DefaultConfig()
	cfg.PowerAwareP2P = true
	cfg.Net.LinkPower = DefaultLinkPower()
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.PowerAwareP2P || !back.Net.LinkPower.Enabled() {
		t.Fatalf("round trip lost extension fields: %+v", back.Net.LinkPower)
	}
}

func TestFacadeTraceRecorder(t *testing.T) {
	cfg, err := ClusterFor(16)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := AttachTrace(w)
	w.Launch(func(r *Rank) {
		Bcast(CommWorld(r), 0, 256<<10, CollectiveOptions{Power: Proposed})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, w.Engine().Now()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
}

func TestFacadeNASApp(t *testing.T) {
	for _, name := range []string{"ft.A", "is.B", "cg.A", "mg.A"} {
		app, err := NASApp(name)
		if err != nil || app.Name != name {
			t.Fatalf("NASApp(%q) = %q, %v", name, app.Name, err)
		}
	}
	if _, err := NASApp("lu.C"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	// And one runs end to end through the facade.
	cfg, err := ClusterFor(16)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NASApp("cg.A")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunApp(app, cfg, NoPower)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 || rep.CommEnergyFraction() <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
}
