package pacc_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pacc"
)

// runObserved runs one Alltoall(256KiB, Proposed) on a 2-node world with
// observability attached and returns the exported trace and metrics.
func runObserved(t *testing.T) (traceJSON, metricsJSON []byte) {
	t.Helper()
	cfg := pacc.DefaultConfig()
	cfg.NProcs = 16
	cfg.PPN = 8
	cfg.Topo.Nodes = 2
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := pacc.AttachObs(w)
	w.Launch(func(r *pacc.Rank) {
		c := pacc.CommWorld(r)
		pacc.Alltoall(c, 256<<10, pacc.CollectiveOptions{Power: pacc.Proposed})
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var tb, mb bytes.Buffer
	if err := sess.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestMergedTraceHasAllLayers is the issue's acceptance scenario: one
// power-aware Alltoall exports a single merged timeline carrying all four
// layers — per-core power states, MPI message lifecycles, network flows,
// and collective phase spans.
func TestMergedTraceHasAllLayers(t *testing.T) {
	traceJSON, metricsJSON := runObserved(t)

	var events []map[string]any
	if err := json.Unmarshal(traceJSON, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawPower, sawMsg, sawFlow, sawCollective, sawWait bool
	for _, ev := range events {
		name, _ := ev["name"].(string)
		cat, _ := ev["cat"].(string)
		switch {
		case cat == "mpi":
			sawMsg = true
		case cat == "net":
			sawFlow = true
		case name == "alltoall" || strings.HasPrefix(name, "phase "):
			sawCollective = true
		case strings.HasPrefix(name, "wait "):
			sawWait = true
		case strings.Contains(name, "GHz") && (strings.HasPrefix(name, "busy") || strings.HasPrefix(name, "idle")):
			sawPower = true
		}
	}
	if !sawPower || !sawMsg || !sawFlow || !sawCollective || !sawWait {
		t.Fatalf("merged trace missing layers: power=%v msg=%v flow=%v collective=%v wait=%v",
			sawPower, sawMsg, sawFlow, sawCollective, sawWait)
	}

	var m struct {
		Counters         map[string]int64   `json:"counters"`
		DurationsSeconds map[string]float64 `json:"durations_seconds"`
		Histograms       map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(metricsJSON, &m); err != nil {
		t.Fatalf("metrics are not valid JSON: %v", err)
	}
	for _, ctr := range []string{"mpi.bytes.net", "mpi.msgs.net_rendezvous",
		"power.dvfs.transitions", "power.throttle.transitions", "net.flows",
		"collective.alltoall.calls"} {
		if m.Counters[ctr] <= 0 {
			t.Errorf("counter %s = %d, want > 0", ctr, m.Counters[ctr])
		}
	}
	if m.DurationsSeconds["mpi.wait.spin"] <= 0 {
		t.Errorf("mpi.wait.spin = %v, want > 0", m.DurationsSeconds["mpi.wait.spin"])
	}
	if m.Histograms["collective.alltoall.energy_j"].Count != 1 {
		t.Errorf("alltoall energy histogram count = %d, want 1",
			m.Histograms["collective.alltoall.energy_j"].Count)
	}
}

// TestObsExportDeterministic asserts the golden property: two identical
// runs export byte-identical trace and metrics JSON.
func TestObsExportDeterministic(t *testing.T) {
	t1, m1 := runObserved(t)
	t2, m2 := runObserved(t)
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs between identical runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics JSON differs between identical runs")
	}
}

// TestObsDisabledIsInert checks the off-by-default contract: a world with
// no session attached has a nil bus, and simulation results are identical
// with and without observability.
func TestObsDisabledIsInert(t *testing.T) {
	run := func(attach bool) (float64, float64) {
		cfg := pacc.DefaultConfig()
		cfg.NProcs = 16
		cfg.PPN = 8
		cfg.Topo.Nodes = 2
		w, err := pacc.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			pacc.AttachObs(w)
		} else if w.Obs() != nil {
			t.Fatal("world has a bus without AttachObs")
		}
		w.Launch(func(r *pacc.Rank) {
			pacc.Alltoall(pacc.CommWorld(r), 256<<10, pacc.CollectiveOptions{Power: pacc.Proposed})
		})
		elapsed, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		return elapsed.Seconds(), w.Station().EnergyJoules()
	}
	offT, offJ := run(false)
	onT, onJ := run(true)
	if offT != onT || offJ != onJ {
		t.Fatalf("observability changed the simulation: off=(%v s, %v J) on=(%v s, %v J)",
			offT, offJ, onT, onJ)
	}
}
