package pacc

import (
	"fmt"
	"io"
	"os"
	"strings"

	"pacc/internal/analyze"
	"pacc/internal/obs"
	"pacc/internal/trace"
)

// ObsSession bundles the cross-layer observability of one simulated job:
// an event bus collecting MPI message lifecycles, network flow and
// link-busy spans, per-rank collective phases, and wait/transition
// metrics, plus a power-state recorder whose per-core spans are merged
// into the exported timeline. Obtain one with AttachObs before Launch;
// export with WriteTrace / WriteMetrics after Run.
type ObsSession struct {
	w        *World
	bus      *obs.Bus
	rec      *trace.Recorder
	merged   bool
	residted bool
	// collector, when non-nil, streams events as they are emitted (see
	// EnableAnalytics); Report falls back to a post-run replay otherwise.
	collector *analyze.Collector
}

// AttachObs instruments a world for tracing and metrics collection. Call
// before Launch. Observability is off unless attached; when off, every
// instrumentation point is a nil-receiver no-op.
func AttachObs(w *World) *ObsSession {
	bus := obs.NewBus(w.Engine())
	w.AttachObs(bus)
	return &ObsSession{
		w:   w,
		bus: bus,
		rec: trace.Attach(w.Station(), w.Config().Topo.CoresPerNode()),
	}
}

// Bus exposes the underlying event bus (for custom instrumentation or
// metric queries in tests).
func (s *ObsSession) Bus() *obs.Bus { return s.bus }

// mergePower folds the recorder's power-state spans into the bus once.
func (s *ObsSession) mergePower() {
	if s.merged {
		return
	}
	s.merged = true
	s.rec.ExportToBus(s.bus, s.w.Station().Now())
}

// WriteTrace exports the merged Chrome trace-event JSON — power-state
// spans per core interleaved with message, flow, wait, and collective
// phase spans — viewable in chrome://tracing or https://ui.perfetto.dev.
// Call after Run.
func (s *ObsSession) WriteTrace(w io.Writer) error {
	s.mergePower()
	return s.bus.WriteChromeTrace(w)
}

// mergeResidency folds the per-core power-state residency counters into
// the bus's duration metrics once, as power.residency.core<N>.<state>.
func (s *ObsSession) mergeResidency() {
	if s.residted {
		return
	}
	s.residted = true
	for _, c := range s.w.Station().Cores() {
		for _, r := range c.Residencies() {
			label := strings.ReplaceAll(r.State.Label(), " ", "_")
			s.bus.AddDuration(fmt.Sprintf("power.residency.core%d.%s", c.ID(), label), r.Time)
		}
	}
}

// WriteMetrics exports the metrics snapshot (counters, accumulated
// durations in seconds — including per-core power-state residency —
// and histograms) as indented JSON. Call after Run.
func (s *ObsSession) WriteMetrics(w io.Writer) error {
	s.mergeResidency()
	return s.bus.WriteMetricsJSON(w)
}

// WriteTraceFile writes the merged trace to a file path.
func (s *ObsSession) WriteTraceFile(path string) error {
	return writeFileWith(path, s.WriteTrace)
}

// WriteMetricsFile writes the metrics snapshot to a file path.
func (s *ObsSession) WriteMetricsFile(path string) error {
	return writeFileWith(path, s.WriteMetrics)
}

// EnableAnalytics attaches a streaming analytics collector to the bus:
// every subsequently emitted timeline event is normalized and retained
// by the analyzer as it happens, so Report needs no post-run replay.
// Call right after AttachObs (idempotent). The per-event cost is one
// append; see BENCH.md for the measured overhead.
func (s *ObsSession) EnableAnalytics() {
	if s.collector == nil {
		s.collector = analyze.NewCollector()
		s.collector.Attach(s.bus)
	}
}

// Analyze runs the post-run analytics engine — critical paths, per-rank
// slack, energy attribution — over this session's event stream and
// returns the full analysis (report plus trace annotations). Call after
// Run. The switch-cost slack filter defaults to this world's power
// model.
func (s *ObsSession) Analyze(opt AnalysisOptions) *analyze.Analysis {
	s.mergePower()
	if opt.ODVFSUs == 0 {
		opt.ODVFSUs = s.w.Config().Power.ODVFS.Micros()
	}
	if opt.OThrottleUs == 0 {
		opt.OThrottleUs = s.w.Config().Power.OThrottle.Micros()
	}
	c := s.collector
	if c == nil {
		c = analyze.NewCollector()
		s.bus.EachEvent(c.AddObs)
	}
	return c.Model().Analyze(opt)
}

// Report computes and returns the analytics report with default
// options. Call after Run.
func (s *ObsSession) Report() *AnalysisReport {
	return s.Analyze(AnalysisOptions{}).Report
}

// WriteReport writes the analytics report as deterministic JSON.
func (s *ObsSession) WriteReport(w io.Writer) error {
	return s.Report().Write(w)
}

// WriteReportFile writes the analytics report to a file path.
func (s *ObsSession) WriteReportFile(path string) error {
	return writeFileWith(path, s.WriteReport)
}

// WriteAnnotatedTrace writes the Chrome trace with the analysis folded
// in: critical-path spans colored and flagged (args.crit), wait spans
// annotated with their slack. The stream is round-tripped through the
// standard exporter first, so metadata rows and event order match
// WriteTrace exactly.
func (s *ObsSession) WriteAnnotatedTrace(w io.Writer) error {
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(s.WriteTrace(pw)) }()
	m, err := analyze.ParseChromeTrace(pr)
	if err != nil {
		return err
	}
	opt := AnalysisOptions{
		ODVFSUs:     s.w.Config().Power.ODVFS.Micros(),
		OThrottleUs: s.w.Config().Power.OThrottle.Micros(),
	}
	return m.Analyze(opt).WriteAnnotatedTrace(w)
}

// WriteAnnotatedTraceFile writes the annotated trace to a file path.
func (s *ObsSession) WriteAnnotatedTraceFile(path string) error {
	return writeFileWith(path, s.WriteAnnotatedTrace)
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
