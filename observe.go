package pacc

import (
	"io"
	"os"

	"pacc/internal/obs"
	"pacc/internal/trace"
)

// ObsSession bundles the cross-layer observability of one simulated job:
// an event bus collecting MPI message lifecycles, network flow and
// link-busy spans, per-rank collective phases, and wait/transition
// metrics, plus a power-state recorder whose per-core spans are merged
// into the exported timeline. Obtain one with AttachObs before Launch;
// export with WriteTrace / WriteMetrics after Run.
type ObsSession struct {
	w      *World
	bus    *obs.Bus
	rec    *trace.Recorder
	merged bool
}

// AttachObs instruments a world for tracing and metrics collection. Call
// before Launch. Observability is off unless attached; when off, every
// instrumentation point is a nil-receiver no-op.
func AttachObs(w *World) *ObsSession {
	bus := obs.NewBus(w.Engine())
	w.AttachObs(bus)
	return &ObsSession{
		w:   w,
		bus: bus,
		rec: trace.Attach(w.Station(), w.Config().Topo.CoresPerNode()),
	}
}

// Bus exposes the underlying event bus (for custom instrumentation or
// metric queries in tests).
func (s *ObsSession) Bus() *obs.Bus { return s.bus }

// mergePower folds the recorder's power-state spans into the bus once.
func (s *ObsSession) mergePower() {
	if s.merged {
		return
	}
	s.merged = true
	s.rec.ExportToBus(s.bus, s.w.Station().Now())
}

// WriteTrace exports the merged Chrome trace-event JSON — power-state
// spans per core interleaved with message, flow, wait, and collective
// phase spans — viewable in chrome://tracing or https://ui.perfetto.dev.
// Call after Run.
func (s *ObsSession) WriteTrace(w io.Writer) error {
	s.mergePower()
	return s.bus.WriteChromeTrace(w)
}

// WriteMetrics exports the metrics snapshot (counters, accumulated
// durations in seconds, histograms) as indented JSON. Call after Run.
func (s *ObsSession) WriteMetrics(w io.Writer) error {
	return s.bus.WriteMetricsJSON(w)
}

// WriteTraceFile writes the merged trace to a file path.
func (s *ObsSession) WriteTraceFile(path string) error {
	return writeFileWith(path, s.WriteTrace)
}

// WriteMetricsFile writes the metrics snapshot to a file path.
func (s *ObsSession) WriteMetricsFile(path string) error {
	return writeFileWith(path, s.WriteMetrics)
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
