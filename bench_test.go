package pacc

// Benchmark harness: one testing.B benchmark per figure and table of the
// paper's evaluation, plus the ablations. Each benchmark regenerates its
// artifact through the experiment registry at a reduced scale so `go test
// -bench` finishes in minutes; run `cmd/powercoll -exp all` for the
// paper-fidelity outputs recorded in EXPERIMENTS.md.

import (
	"testing"
)

// benchScale keeps each iteration around a second of wall time.
const benchScale = 0.05

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 && len(res.Tables) == 0 {
			b.Fatalf("%s: empty result", id)
		}
	}
}

// Figure 2: motivation — contention and phase breakdowns.
func BenchmarkFig2a(b *testing.B) { benchmarkExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B) { benchmarkExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B) { benchmarkExperiment(b, "fig2c") }

// Figure 6: polling vs blocking progression.
func BenchmarkFig6a(b *testing.B) { benchmarkExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B) { benchmarkExperiment(b, "fig6b") }

// Figure 7: power-aware alltoall.
func BenchmarkFig7a(b *testing.B) { benchmarkExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B) { benchmarkExperiment(b, "fig7b") }

// Figure 8: power-aware broadcast.
func BenchmarkFig8a(b *testing.B) { benchmarkExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B) { benchmarkExperiment(b, "fig8b") }

// Figure 9 / Table I: CPMD.
func BenchmarkFig9(b *testing.B)   { benchmarkExperiment(b, "fig9") }
func BenchmarkTable1(b *testing.B) { benchmarkExperiment(b, "table1") }

// Figure 10 / Table II: NAS FT and IS.
func BenchmarkFig10(b *testing.B)  { benchmarkExperiment(b, "fig10") }
func BenchmarkTable2(b *testing.B) { benchmarkExperiment(b, "table2") }

// Ablations beyond the paper's headline results.
func BenchmarkAblCoreThrottle(b *testing.B) { benchmarkExperiment(b, "abl-corethrottle") }
func BenchmarkAblTStates(b *testing.B)      { benchmarkExperiment(b, "abl-tstates") }
func BenchmarkAblODVFS(b *testing.B)        { benchmarkExperiment(b, "abl-odvfs") }
func BenchmarkAblSensitivity(b *testing.B)  { benchmarkExperiment(b, "abl-sensitivity") }
func BenchmarkAblBlackBox(b *testing.B)     { benchmarkExperiment(b, "abl-blackbox") }

// Extensions: rack-aware collectives with rack-level throttling, and
// dynamic link power management (both §VIII directions).
func BenchmarkExtTopoRack(b *testing.B) { benchmarkExperiment(b, "ext-toporack") }
func BenchmarkExtNetPower(b *testing.B) { benchmarkExperiment(b, "ext-netpower") }
func BenchmarkExtP2PPower(b *testing.B) { benchmarkExperiment(b, "ext-p2ppower") }

// Micro-benchmarks of the simulator itself: how fast the discrete-event
// core executes one collective on the full 64-rank testbed.

func benchmarkCollective(b *testing.B, body func(r *Rank)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		w.Launch(body)
		if _, err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimAlltoall64(b *testing.B) {
	benchmarkCollective(b, func(r *Rank) {
		Alltoall(CommWorld(r), 256<<10, CollectiveOptions{})
	})
}

func BenchmarkSimAlltoallProposed64(b *testing.B) {
	benchmarkCollective(b, func(r *Rank) {
		Alltoall(CommWorld(r), 256<<10, CollectiveOptions{Power: Proposed})
	})
}

func BenchmarkSimBcast64(b *testing.B) {
	benchmarkCollective(b, func(r *Rank) {
		Bcast(CommWorld(r), 0, 1<<20, CollectiveOptions{})
	})
}

func BenchmarkSimBarrier64(b *testing.B) {
	benchmarkCollective(b, func(r *Rank) {
		Barrier(CommWorld(r))
	})
}
