package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pacc/internal/sweep"
)

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://localhost:8410", "daemon base URL")
		ops     = fs.String("ops", "allreduce_topo", "comma-separated ops (see daemon docs)")
		sizes   = fs.String("sizes", "64K", "comma-separated message sizes (K/M suffixes)")
		modes   = fs.String("modes", "no-power", "comma-separated power modes")
		seeds   = fs.String("seeds", "", "seed sweep: 'lo:hi' half-open or comma list")
		procs   = fs.Int("procs", 64, "ranks")
		ppn     = fs.Int("ppn", 8, "ranks per node")
		iters   = fs.Int("iters", 1, "timed iterations")
		plan    = fs.String("plan", "", "communication plan ('auto' for cost-based selection)")
		faultS  = fs.String("fault", "", "deterministic fault spec, e.g. 'msgloss=0.02'")
		tenant  = fs.String("tenant", "cli", "tenant the submission is charged to")
		idem    = fs.String("idem", "", "idempotency key prefix: resubmitting the same prefix after a daemon crash attaches to the original work instead of re-running it")
		retries = fs.Int("retries", 5, "times to retry a 429/503 (Retry-After honored)")
		wait    = fs.Duration("wait", 10*time.Minute, "client-side timeout for the batch")
		watch   = fs.Bool("watch", false, "stream live daemon progress (/v1/watch) while the batch runs")
		watchI  = fs.Duration("watch-interval", time.Second, "progress line interval with -watch")
	)
	fs.Parse(args)

	sz, err := sweep.ParseSizes(*sizes)
	if err != nil {
		return err
	}
	sd, err := sweep.ParseSeedRange(*seeds)
	if err != nil {
		return err
	}
	grid := sweep.Grid{
		Tenant: *tenant,
		Ops:    splitList(*ops),
		Sizes:  sz,
		Modes:  splitList(*modes),
		Seeds:  sd,
		Procs:  *procs, PPN: *ppn, Iters: *iters,
		Plan: *plan, Fault: *faultS,
	}
	// Validate locally before burdening the daemon; with -idem, pin a
	// stable per-index idempotency key so this exact invocation can be
	// replayed safely against a restarted daemon.
	reqs := grid.Expand()
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return err
		}
		if *idem != "" {
			reqs[i].Idem = fmt.Sprintf("%s-%d", *idem, i)
		}
	}

	var body []byte
	if *idem != "" {
		body, err = json.Marshal(submitRequest{Requests: reqs})
	} else {
		body, err = json.Marshal(submitRequest{Grid: &grid})
	}
	if err != nil {
		return err
	}
	// The watch rides alongside the batch POST: progress lines on stderr,
	// the result table on stdout. Canceling the context tears the stream
	// down once the batch resolves either way.
	if *watch {
		ctx, cancel := context.WithCancel(context.Background())
		watchDone := make(chan struct{})
		go func() { watchProgress(ctx, *addr, *watchI, os.Stderr); close(watchDone) }()
		defer func() { cancel(); <-watchDone }()
	}

	// 429 (overload/quota) and 503 (recovering/draining daemon) are
	// backpressure, not failure: honor Retry-After and resubmit. With
	// -idem the resubmit is exactly-once by construction; without it,
	// the store dedupe still makes retries cheap.
	client := &http.Client{Timeout: *wait}
	var out submitResponse
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(strings.TrimRight(*addr, "/")+"/v1/submit",
			"application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		code := resp.StatusCode
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if attempt >= *retries {
				return fmt.Errorf("submit: daemon still shedding (%s) after %d retries", resp.Status, attempt)
			}
			delay := 2 * time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if d, err := time.ParseDuration(s + "s"); err == nil {
					delay = d
				}
			}
			fmt.Fprintf(os.Stderr, "submit: daemon shedding (%s), retrying in %v\n", resp.Status, delay)
			time.Sleep(delay)
			continue
		}
		if code != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return fmt.Errorf("submit: daemon returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("submit: malformed daemon response: %w", err)
		}
		break
	}

	failed := 0
	fmt.Printf("%-10s %-14s %-10s %-12s %-12s %s\n",
		"status", "op", "bytes", "elapsed(us)", "energy(J)", "key")
	for i, item := range out.Items {
		op, bts := "?", int64(0)
		if i < len(reqs) {
			op, bts = reqs[i].Op, reqs[i].Bytes
		}
		switch item.Status {
		case "completed":
			res, err := sweep.DecodeResult(item.Result)
			if err != nil {
				failed++
				fmt.Printf("%-10s %-14s %-10d %-12s %-12s %s\n",
					"bad", op, bts, "-", "-", err)
				continue
			}
			fmt.Printf("%-10s %-14s %-10d %-12.2f %-12.4f %s\n",
				item.Status, res.Op, bts, res.ElapsedUs, res.EnergyJ, shortKey(item.Key))
		default:
			failed++
			fmt.Printf("%-10s %-14s %-10d %-12s %-12s %s\n",
				item.Status, op, bts, "-", "-", item.Error)
		}
	}
	if failed > 0 {
		return fmt.Errorf("submit: %d of %d requests did not complete", failed, len(out.Items))
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
