package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"pacc/internal/sweep"
)

func getQuery(t *testing.T, url string) queryResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %s", resp.Status)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServeQueryAggregates(t *testing.T) {
	ts, _ := testServer(t)
	// An empty store answers cleanly.
	if out := getQuery(t, ts.URL+"/v1/query"); out.Results != 0 || len(out.Groups) != 0 {
		t.Fatalf("empty store query = %+v, want zero results", out)
	}

	// Complete a small sweep: two ops, several sizes each.
	postSubmit(t, ts, submitRequest{Grid: &sweep.Grid{
		Ops:   []string{"allreduce", "bcast_binomial"},
		Sizes: []int64{1024, 4096, 16384},
		Procs: 8, PPN: 4, Iters: 1,
	}})

	out := getQuery(t, ts.URL+"/v1/query")
	if out.Schema != querySchema {
		t.Fatalf("schema %q, want %q", out.Schema, querySchema)
	}
	if out.Results != 6 || out.Skipped != 0 {
		t.Fatalf("results %d skipped %d, want 6 and 0", out.Results, out.Skipped)
	}
	if len(out.Groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(out.Groups), out.Groups)
	}
	// Groups are sorted by op name.
	if out.Groups[0].Op != "allreduce" || out.Groups[1].Op != "bcast_binomial" {
		t.Fatalf("group order %q, %q", out.Groups[0].Op, out.Groups[1].Op)
	}
	for _, g := range out.Groups {
		if g.LatencyUs.Count != 3 || g.EnergyJ.Count != 3 {
			t.Fatalf("group %s counts %d/%d, want 3/3", g.Op, g.LatencyUs.Count, g.EnergyJ.Count)
		}
		if g.LatencyUs.Mean <= 0 || g.EnergyJ.Mean <= 0 {
			t.Fatalf("group %s has non-positive means: %+v", g.Op, g)
		}
		// Nearest-rank invariants on a 3-value sample.
		if g.LatencyUs.P99 != g.LatencyUs.Max || g.LatencyUs.P50 > g.LatencyUs.P90 {
			t.Fatalf("group %s percentile ordering broken: %+v", g.Op, g.LatencyUs)
		}
	}

	// The op filter narrows the digest to that op's runs.
	one := getQuery(t, ts.URL+"/v1/query?op=allreduce")
	if one.Results != 3 || len(one.Groups) != 1 || one.Groups[0].Op != "allreduce" {
		t.Fatalf("filtered query = %+v, want 3 allreduce results", one)
	}
	if one.Groups[0].LatencyUs != out.Groups[0].LatencyUs {
		t.Fatalf("filtered digest %+v differs from grouped digest %+v",
			one.Groups[0].LatencyUs, out.Groups[0].LatencyUs)
	}

	// An unknown op matches nothing (not an error).
	if none := getQuery(t, ts.URL+"/v1/query?op=nonsense"); none.Results != 0 {
		t.Fatalf("nonsense op query = %+v, want zero results", none)
	}

	// POST is rejected.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/query = %d, want 405", resp.StatusCode)
	}
}

func TestServeQuerySkipsCorruptEntries(t *testing.T) {
	ts, svc := testServer(t)
	postSubmit(t, ts, submitRequest{Requests: []sweep.Request{
		{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024},
		{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 4096},
	}})
	keys, err := svc.Store().Keys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("store keys: %v, %v", keys, err)
	}
	if ok, err := svc.Store().CorruptEntry(keys[0], 13); !ok || err != nil {
		t.Fatalf("corrupt entry: %v, %v", ok, err)
	}
	out := getQuery(t, ts.URL+"/v1/query")
	if out.Results != 1 || out.Skipped != 1 {
		t.Fatalf("results %d skipped %d, want 1 and 1 (corrupt entry excluded)", out.Results, out.Skipped)
	}
}
