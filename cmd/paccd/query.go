package main

import (
	"encoding/json"
	"net/http"
	"sort"

	"pacc/internal/stats"
	"pacc/internal/sweep"
)

// querySchema tags the /v1/query response shape.
const querySchema = "pacc.paccd.query/v1"

// queryGroup aggregates every stored result of one op: nearest-rank
// percentile digests of per-run latency and cluster energy.
type queryGroup struct {
	Op        string       `json:"op"`
	LatencyUs stats.Digest `json:"latency_us"`
	EnergyJ   stats.Digest `json:"energy_j"`
}

// queryResponse is the GET /v1/query body. Results counts the store
// entries aggregated (after the op filter); Skipped counts entries that
// could not be read or decoded (evicted-as-corrupt, foreign schema) —
// they are excluded from the digests rather than failing the query.
type queryResponse struct {
	Schema  string       `json:"schema"`
	Results int          `json:"results"`
	Skipped int          `json:"skipped,omitempty"`
	Groups  []queryGroup `json:"groups"`
}

// handleQuery serves GET /v1/query[?op=NAME]: percentile latency and
// energy aggregates over every completed (stored) sweep result, grouped
// by op. It reads the content-addressed store directly, so it sees
// everything ever completed by this daemon's store directory — not just
// the current process's submissions.
func handleQuery(svc *sweep.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		opFilter := r.URL.Query().Get("op")
		store := svc.Store()
		keys, err := store.Keys()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		type sample struct{ lat, energy []float64 }
		byOp := map[string]*sample{}
		resp := queryResponse{Schema: querySchema, Groups: []queryGroup{}}
		for _, key := range keys {
			payload, err := store.Get(key)
			if err != nil || payload == nil {
				// Corrupt entries are already evicted by Get; a missing
				// one raced a concurrent eviction. Either way: skip.
				resp.Skipped++
				continue
			}
			res, err := sweep.DecodeResult(payload)
			if err != nil {
				resp.Skipped++
				continue
			}
			if opFilter != "" && res.Op != opFilter {
				continue
			}
			s := byOp[res.Op]
			if s == nil {
				s = &sample{}
				byOp[res.Op] = s
			}
			s.lat = append(s.lat, res.ElapsedUs)
			s.energy = append(s.energy, res.EnergyJ)
			resp.Results++
		}
		ops := make([]string, 0, len(byOp))
		for op := range byOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			s := byOp[op]
			resp.Groups = append(resp.Groups, queryGroup{
				Op:        op,
				LatencyUs: stats.DigestOf(s.lat),
				EnergyJ:   stats.DigestOf(s.energy),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	}
}
