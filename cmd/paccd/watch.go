package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"pacc/internal/sweep"
)

// watchEvent is one progress snapshot on the /v1/watch stream: the
// daemon's request ledger at an instant, enough for a client to render
// a live progress line without polling /v1/stats.
type watchEvent struct {
	Accepted    int64 `json:"accepted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Shed        int64 `json:"shed"`
	QueueDepth  int64 `json:"queue_depth"`
	Retries     int64 `json:"retries"`
	Quarantined int64 `json:"quarantined"`
}

func snapshotEvent(svc *sweep.Service) watchEvent {
	bus := svc.Bus()
	return watchEvent{
		Accepted:  bus.Counter(sweep.CtrAccepted),
		Completed: bus.Counter(sweep.CtrCompleted),
		Failed:    bus.Counter(sweep.CtrFailed),
		Shed: bus.Counter(sweep.CtrShedOverload) + bus.Counter(sweep.CtrShedQuota) +
			bus.Counter(sweep.CtrShedDraining),
		QueueDepth:  bus.Counter(sweep.CtrQueueDepth),
		Retries:     bus.Counter(sweep.CtrRetries),
		Quarantined: bus.Counter(sweep.CtrQuarantined),
	}
}

// handleWatch serves GET /v1/watch as a server-sent-event stream: one
// `data:` line of watchEvent JSON immediately, then one per interval
// (?interval=250ms overrides the 1s default) until the client hangs up.
func handleWatch(svc *sweep.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		interval := time.Second
		if v := r.URL.Query().Get("interval"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				http.Error(w, "bad interval: "+v, http.StatusBadRequest)
				return
			}
			interval = d
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			raw, err := json.Marshal(snapshotEvent(svc))
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", raw); err != nil {
				return
			}
			fl.Flush()
			select {
			case <-r.Context().Done():
				return
			case <-tick.C:
			}
		}
	}
}

// watchProgress consumes a daemon's /v1/watch stream and prints one
// progress line per event to out until ctx is canceled or the stream
// ends. Errors are reported on the final line rather than returned:
// the watch is advisory, the batch POST is the source of truth.
func watchProgress(ctx context.Context, addr string, interval time.Duration, out io.Writer) {
	url := strings.TrimRight(addr, "/") + "/v1/watch?interval=" + interval.String()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		fmt.Fprintf(out, "watch: %v\n", err)
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			fmt.Fprintf(out, "watch: %v\n", err)
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(out, "watch: daemon returned %s\n", resp.Status)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		fmt.Fprintf(out, "watch: %d/%d completed, %d failed, %d queued, %d retries\n",
			ev.Completed, ev.Accepted, ev.Failed, ev.QueueDepth, ev.Retries)
	}
}
