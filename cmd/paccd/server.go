package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pacc/internal/sweep"
)

// submitRequest is the POST /v1/submit body: explicit requests, an
// expandable grid, or both.
type submitRequest struct {
	Requests []sweep.Request `json:"requests,omitempty"`
	Grid     *sweep.Grid     `json:"grid,omitempty"`
}

// submitItem is one request's outcome in the batch response. Status is
// "completed", "shed" (typed admission rejection — overload, quota, a
// recovering or draining daemon; retry later, possibly against a
// restarted daemon), or "failed" (terminal: quarantined, invalid).
type submitItem struct {
	Key    string          `json:"key,omitempty"`
	Status string          `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

type submitResponse struct {
	Items []submitItem `json:"items"`
}

// classify maps the service's typed errors onto wire statuses. A
// ShutdownError is shed, not failed: nothing about the request is wrong,
// and a resubmit after the daemon restarts dedupes against the store.
// Same for RecoveringError (replay in progress) and KilledError.
func classify(err error) string {
	var over *sweep.OverloadedError
	var quota *sweep.QuotaExceededError
	var down *sweep.ShutdownError
	var rec *sweep.RecoveringError
	var killed *sweep.KilledError
	if errors.As(err, &over) || errors.As(err, &quota) ||
		errors.As(err, &down) || errors.As(err, &rec) || errors.As(err, &killed) {
		return "shed"
	}
	return "failed"
}

// shedStatus maps a shed error onto the HTTP status the whole response
// should carry when every item in the batch was shed: 429 for
// per-client backpressure (overload, quota), 503 for daemon-level
// unavailability (draining, recovering, killed). The second return is
// the Retry-After value in seconds — queue drain is fast, journal
// replay and drains take longer.
func shedStatus(err error) (int, string, bool) {
	var over *sweep.OverloadedError
	var quota *sweep.QuotaExceededError
	if errors.As(err, &over) || errors.As(err, &quota) {
		return http.StatusTooManyRequests, "1", true
	}
	var down *sweep.ShutdownError
	var rec *sweep.RecoveringError
	var killed *sweep.KilledError
	if errors.As(err, &down) || errors.As(err, &rec) || errors.As(err, &killed) {
		return http.StatusServiceUnavailable, "5", true
	}
	return 0, "", false
}

// newMux builds the daemon's HTTP API over svc. Factored out of serve
// so tests drive it through httptest.
func newMux(svc *sweep.Service) *http.ServeMux {
	mux := http.NewServeMux()

	// Liveness: the process is up and serving HTTP. Deliberately
	// ignorant of service state — a recovering or draining daemon is
	// alive and must not be restarted by an orchestrator.
	livez := func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}
	mux.HandleFunc("/livez", livez)
	mux.HandleFunc("/healthz", livez) // backwards-compatible alias

	// Readiness: whether new submissions will be accepted right now.
	// 503 "recovering" until journal replay finishes, 503 "draining"
	// once shutdown begins, 200 "ready" in between — so load balancers
	// hold traffic while the daemon settles its crash debts.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		state := svc.State()
		if state != "ready" {
			w.Header().Set("Retry-After", "5")
			http.Error(w, state, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := svc.WriteStats(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/v1/query", handleQuery(svc))

	mux.HandleFunc("/v1/watch", handleWatch(svc))

	mux.HandleFunc("/v1/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var body submitRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "malformed request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		reqs := body.Requests
		if body.Grid != nil {
			reqs = append(reqs, body.Grid.Expand()...)
		}
		if len(reqs) == 0 {
			http.Error(w, "empty batch: provide requests and/or a grid", http.StatusBadRequest)
			return
		}

		tickets, errs := svc.SubmitBatch(reqs)
		resp := submitResponse{Items: make([]submitItem, len(reqs))}
		// When every item is shed the response itself is a shed: 429 or
		// 503 plus Retry-After, so plain HTTP clients back off without
		// parsing the body. Daemon-level causes (503) win over
		// per-client ones (429) if the batch mixes them.
		allShed := true
		shedCode, retryAfter := 0, ""
		noteShed := func(err error) {
			code, after, ok := shedStatus(err)
			if !ok {
				allShed = false
				return
			}
			if code > shedCode {
				shedCode, retryAfter = code, after
			}
		}
		for i := range reqs {
			item := &resp.Items[i]
			if errs[i] != nil {
				item.Status = classify(errs[i])
				item.Error = errs[i].Error()
				noteShed(errs[i])
				continue
			}
			item.Key = tickets[i].Key().String()
			payload, err := tickets[i].Wait(r.Context())
			if err != nil {
				item.Status = classify(err)
				item.Error = err.Error()
				noteShed(err)
				continue
			}
			item.Status = "completed"
			item.Result = json.RawMessage(payload)
			allShed = false
		}
		w.Header().Set("Content-Type", "application/json")
		if allShed && shedCode != 0 {
			w.Header().Set("Retry-After", retryAfter)
			w.WriteHeader(shedCode)
		}
		json.NewEncoder(w).Encode(resp)
	})

	return mux
}
