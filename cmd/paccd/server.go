package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pacc/internal/sweep"
)

// submitRequest is the POST /v1/submit body: explicit requests, an
// expandable grid, or both.
type submitRequest struct {
	Requests []sweep.Request `json:"requests,omitempty"`
	Grid     *sweep.Grid     `json:"grid,omitempty"`
}

// submitItem is one request's outcome in the batch response. Status is
// "completed", "shed" (typed admission rejection — overload, quota, or
// a draining daemon; retry later, possibly against a restarted daemon),
// or "failed" (terminal: quarantined, invalid).
type submitItem struct {
	Key    string          `json:"key,omitempty"`
	Status string          `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

type submitResponse struct {
	Items []submitItem `json:"items"`
}

// classify maps the service's typed errors onto wire statuses. A
// ShutdownError is shed, not failed: nothing about the request is wrong,
// and a resubmit after the daemon restarts dedupes against the store.
func classify(err error) string {
	var over *sweep.OverloadedError
	var quota *sweep.QuotaExceededError
	var down *sweep.ShutdownError
	if errors.As(err, &over) || errors.As(err, &quota) || errors.As(err, &down) {
		return "shed"
	}
	return "failed"
}

// newMux builds the daemon's HTTP API over svc. Factored out of serve
// so tests drive it through httptest.
func newMux(svc *sweep.Service) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := svc.WriteStats(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/v1/query", handleQuery(svc))

	mux.HandleFunc("/v1/watch", handleWatch(svc))

	mux.HandleFunc("/v1/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var body submitRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "malformed request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		reqs := body.Requests
		if body.Grid != nil {
			reqs = append(reqs, body.Grid.Expand()...)
		}
		if len(reqs) == 0 {
			http.Error(w, "empty batch: provide requests and/or a grid", http.StatusBadRequest)
			return
		}

		tickets, errs := svc.SubmitBatch(reqs)
		resp := submitResponse{Items: make([]submitItem, len(reqs))}
		for i := range reqs {
			item := &resp.Items[i]
			if errs[i] != nil {
				item.Status = classify(errs[i])
				item.Error = errs[i].Error()
				continue
			}
			item.Key = tickets[i].Key().String()
			payload, err := tickets[i].Wait(r.Context())
			if err != nil {
				item.Status = classify(err)
				item.Error = err.Error()
				continue
			}
			item.Status = "completed"
			item.Result = json.RawMessage(payload)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})

	return mux
}
