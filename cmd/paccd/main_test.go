package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pacc/internal/sweep"
)

func testServer(t *testing.T) (*httptest.Server, *sweep.Service) {
	t.Helper()
	store, _, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := sweep.NewService(store, sweep.Config{Workers: 2, QueueDepth: 64})
	ts := httptest.NewServer(newMux(svc))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts, svc
}

func postSubmit(t *testing.T, ts *httptest.Server, body submitRequest) submitResponse {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// 429/503 are the all-shed statuses: the body is still a normal
	// per-item response, so decode it either way.
	switch resp.StatusCode {
	case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
	default:
		t.Fatalf("submit returned %s", resp.Status)
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServeSubmitGrid(t *testing.T) {
	ts, _ := testServer(t)
	out := postSubmit(t, ts, submitRequest{Grid: &sweep.Grid{
		Tenant: "test",
		Ops:    []string{"allreduce", "bcast_binomial"},
		Sizes:  []int64{1024},
		Procs:  8, PPN: 4, Iters: 1,
	}})
	if len(out.Items) != 2 {
		t.Fatalf("got %d items, want 2", len(out.Items))
	}
	for i, item := range out.Items {
		if item.Status != "completed" {
			t.Fatalf("item %d: status %q (%s)", i, item.Status, item.Error)
		}
		res, err := sweep.DecodeResult(item.Result)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if res.Key != item.Key || res.ElapsedUs <= 0 {
			t.Fatalf("item %d: implausible result %+v", i, res)
		}
	}
}

func TestServeDedupeAcrossSubmits(t *testing.T) {
	ts, svc := testServer(t)
	req := sweep.Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 2048}
	a := postSubmit(t, ts, submitRequest{Requests: []sweep.Request{req}})
	b := postSubmit(t, ts, submitRequest{Requests: []sweep.Request{req}})
	if a.Items[0].Status != "completed" || b.Items[0].Status != "completed" {
		t.Fatalf("statuses: %q, %q", a.Items[0].Status, b.Items[0].Status)
	}
	if !bytes.Equal(a.Items[0].Result, b.Items[0].Result) {
		t.Fatal("identical requests returned different bytes across submits")
	}
	if n := svc.Bus().Counter(sweep.CtrDedupeStore); n != 1 {
		t.Fatalf("store dedupe counter = %d, want 1 (second submit served from store)", n)
	}
}

func TestServeRejectsBadBatch(t *testing.T) {
	ts, _ := testServer(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"requests":[{"op":"nonsense","procs":8,"ppn":4}]}`, http.StatusOK},
	} {
		resp, err := http.Post(ts.URL+"/v1/submit", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	// An invalid op inside an otherwise well-formed batch fails per-item.
	out := postSubmit(t, ts, submitRequest{Requests: []sweep.Request{
		{Op: "nonsense", Procs: 8, PPN: 4},
	}})
	if out.Items[0].Status != "failed" || out.Items[0].Error == "" {
		t.Fatalf("invalid op item = %+v, want failed with message", out.Items[0])
	}
	if resp, err := http.Get(ts.URL + "/v1/submit"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/submit = %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// The SSE watch endpoint streams live counter snapshots: after a batch
// completes, the first event already reflects it, and events keep
// arriving on the requested interval until the client hangs up.
func TestServeWatchStreams(t *testing.T) {
	ts, _ := testServer(t)
	postSubmit(t, ts, submitRequest{Requests: []sweep.Request{
		{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024},
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/watch?interval=5ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() && events < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("malformed event %q: %v", line, err)
		}
		if ev.Accepted != 1 || ev.Completed != 1 {
			t.Fatalf("event = %+v, want accepted=1 completed=1", ev)
		}
		events++
	}
	if events < 3 {
		t.Fatalf("stream produced %d events before the deadline, want 3", events)
	}
	if resp, err := http.Post(ts.URL+"/v1/watch", "text/plain", nil); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /v1/watch = %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/watch?interval=bogus"); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad interval = %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// A draining daemon sheds new HTTP submissions as "shed" (retry-later,
// not terminal) while a batch accepted before the drain runs to
// completion and its result lands in the store.
func TestServeDrainShedsNewAndFinishesAccepted(t *testing.T) {
	release := make(chan struct{})
	store, _, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := sweep.NewService(store, sweep.Config{
		Workers: 1, QueueDepth: 64,
		Run: func(ctx context.Context, req sweep.Request) ([]byte, error) {
			select {
			case <-release:
				return []byte(`{"held":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ts := httptest.NewServer(newMux(svc))
	defer ts.Close()

	inflight := make(chan submitResponse, 1)
	go func() {
		inflight <- postSubmit(t, ts, submitRequest{Requests: []sweep.Request{
			{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024},
		}})
	}()
	// Wait for the job to be accepted before starting the drain.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Bus().Counter(sweep.CtrAccepted) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never accepted")
		}
		time.Sleep(100 * time.Microsecond)
	}
	drained := make(chan struct{})
	go func() { svc.Shutdown(); close(drained) }()
	for svc.Bus().Counter(sweep.CtrShedDraining) == 0 {
		out := postSubmit(t, ts, submitRequest{Requests: []sweep.Request{
			{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 2048},
		}})
		if st := out.Items[0].Status; st == "shed" {
			break
		} else if st != "completed" {
			t.Fatalf("submit during drain = %+v, want shed", out.Items[0])
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started shedding HTTP submissions")
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	out := <-inflight
	if out.Items[0].Status != "completed" {
		t.Fatalf("accepted batch during drain = %+v, want completed", out.Items[0])
	}
	<-drained
	key, err := sweep.ParseKey(out.Items[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := store.Get(key)
	if err != nil || payload == nil {
		t.Fatalf("drained result not in store: %v, %v", payload, err)
	}
}

// A fully-shed batch carries HTTP backpressure semantics: 429 plus
// Retry-After when the cause is overload or quota, with the usual
// per-item body so clients that do parse it lose nothing.
func TestServeOverloadReturns429(t *testing.T) {
	release := make(chan struct{})
	store, _, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := sweep.NewService(store, sweep.Config{
		Workers: 1, QueueDepth: 1,
		Run: func(ctx context.Context, req sweep.Request) ([]byte, error) {
			select {
			case <-release:
				return []byte(`{"held":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ts := httptest.NewServer(newMux(svc))
	defer func() { ts.Close(); svc.Close() }()

	// Saturate: one request running (held), one queued. The helper
	// goroutines retry shed submissions until theirs is accepted.
	var wg sync.WaitGroup
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := sweep.Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: int64(1024 * (i + 1))}
			for time.Now().Before(deadline) {
				out := postSubmit(t, ts, submitRequest{Requests: []sweep.Request{req}})
				if out.Items[0].Status != "shed" {
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		}(i)
	}
	for svc.Bus().Counter(sweep.CtrAccepted) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("saturation submissions never accepted")
		}
		time.Sleep(100 * time.Microsecond)
	}

	raw, _ := json.Marshal(submitRequest{Requests: []sweep.Request{
		{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 99999},
	}})
	resp, err := http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Items[0].Status != "shed" {
		t.Errorf("item status %q, want shed", out.Items[0].Status)
	}
	close(release)
	wg.Wait()
}

// Readiness is a state machine the mux exposes: 503 "recovering" while
// the journal replays, 200 "ready" after, 503 "draining" once shutdown
// begins — and a recovering daemon sheds submits with 503 too.
func TestServeReadyzStates(t *testing.T) {
	hold := make(chan struct{})
	svc, err := sweep.OpenService(t.TempDir(), sweep.Config{
		Workers: 1, QueueDepth: 8, HoldRecovery: hold,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(svc))
	defer func() { ts.Close(); svc.Close() }()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, strings.TrimSpace(buf.String())
	}

	// Recovering: alive, not ready, submissions shed with 503.
	if code, body := get("/livez"); code != http.StatusOK || body != "ok" {
		t.Errorf("livez while recovering = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "recovering" {
		t.Errorf("readyz while recovering = %d %q, want 503 recovering", code, body)
	}
	raw, _ := json.Marshal(submitRequest{Requests: []sweep.Request{
		{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024},
	}})
	resp, err := http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("submit while recovering = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Replay finishes: ready.
	close(hold)
	if err := svc.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != "ready" {
		t.Errorf("readyz when ready = %d %q, want 200 ready", code, body)
	}
	out := postSubmit(t, ts, submitRequest{Requests: []sweep.Request{
		{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024},
	}})
	if out.Items[0].Status != "completed" {
		t.Fatalf("submit when ready = %+v", out.Items[0])
	}

	// Shutdown: draining (terminally, here: nothing in flight, so the
	// drain completes and the state lands on closed — both are 503).
	svc.Shutdown()
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after shutdown = %d, want 503", code)
	}
	if code, body := get("/livez"); code != http.StatusOK || body != "ok" {
		t.Errorf("livez after shutdown = %d %q, want 200 ok (alive but not ready)", code, body)
	}
}

// The drain window itself reports "draining" on /readyz while accepted
// work is still running.
func TestServeReadyzDraining(t *testing.T) {
	release := make(chan struct{})
	store, _, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := sweep.NewService(store, sweep.Config{
		Workers: 1, QueueDepth: 8,
		Run: func(ctx context.Context, req sweep.Request) ([]byte, error) {
			select {
			case <-release:
				return []byte(`{"held":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ts := httptest.NewServer(newMux(svc))
	defer func() { ts.Close() }()

	if _, err := svc.Submit(sweep.Request{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024}); err != nil {
		t.Fatal(err)
	}
	drained := make(chan struct{})
	go func() { svc.Shutdown(); close(drained) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		body := strings.TrimSpace(buf.String())
		if resp.StatusCode == http.StatusServiceUnavailable && body == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never reported draining (last: %d %q)", resp.StatusCode, body)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	<-drained
}

func TestServeStatsAndHealth(t *testing.T) {
	ts, _ := testServer(t)
	postSubmit(t, ts, submitRequest{Requests: []sweep.Request{
		{Op: "allreduce", Procs: 8, PPN: 4, Bytes: 1024},
	}})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats is not JSON: %v", err)
	}
	raw, _ := json.Marshal(stats)
	if !bytes.Contains(raw, []byte(sweep.CtrCompleted)) {
		t.Fatalf("stats missing %s: %s", sweep.CtrCompleted, raw)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hz, err)
	}
	hz.Body.Close()
}
