// Command paccd is the sweep daemon: a crash-safe, overload-tolerant
// service that shards batches of simulation runs — seed sweeps,
// parameter grids, chaos campaigns — across a worker pool over a
// content-addressed result store.
//
// Usage:
//
//	paccd serve  -addr :8410 -store /var/lib/pacc     # run the daemon
//	paccd submit -addr http://host:8410 -ops allreduce,bcast \
//	             -sizes 1K,64K,1M -seeds 0:4          # submit a grid
//	paccd soak   -store /tmp/soak                     # chaos campaign
//
// The daemon is engineered for failure as the normal case: per-request
// deadlines, worker crash containment with bounded retry and poison
// quarantine, checksummed results scavenged on startup, and typed
// shedding under overload. Identical requests — within a sweep, across
// tenants, or across daemon restarts — execute once.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pacc/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "paccd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paccd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: paccd <command> [flags]

commands:
  serve    run the sweep daemon (HTTP API: POST /v1/submit, GET /v1/stats)
  submit   expand a parameter grid and submit it to a running daemon
  soak     run the service-level chaos campaign and verify its invariants

run 'paccd <command> -h' for command flags
`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8410", "listen address")
		storeDir = fs.String("store", "", "result store directory (required)")
		workers  = fs.Int("workers", 4, "worker pool size")
		queue    = fs.Int("queue", 64, "admission queue depth (overload bound)")
		quota    = fs.Int("quota", 0, "per-tenant in-flight quota (0 = unlimited)")
		attempts = fs.Int("max-attempts", 3, "failures before a request is quarantined")
		reqTO    = fs.Duration("request-timeout", 0, "per-request execution deadline (0 = none)")
	)
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("serve: -store is required")
	}
	// OpenService brings up store + journal and replays the journal in
	// the background: the HTTP listener is up immediately (liveness),
	// /readyz reports "recovering" until replay finishes, and every
	// request acked before the last crash is already re-enqueued.
	svc, err := sweep.OpenService(*storeDir, sweep.Config{
		Workers: *workers, QueueDepth: *queue, TenantQuota: *quota,
		MaxAttempts: *attempts, RequestTimeout: *reqTO,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: *addr, Handler: newMux(svc), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("paccd: serving on %s with %d workers (journal replaying in background)\n",
		*addr, *workers)
	go func() {
		rec, err := svc.RecoveryReport(context.Background())
		if err != nil {
			return
		}
		fmt.Printf("paccd: recovered: store kept %d entries (%d corrupt evicted, %d torn removed); "+
			"journal %d records in %d segments (%d truncated, %d compacted); "+
			"%d requests re-enqueued, %d repaired from store, %d quarantines restored, "+
			"%d interrupted leases\n",
			rec.Scavenge.Kept, rec.Scavenge.Corrupt, rec.Scavenge.Torn,
			rec.Journal.Records, rec.Journal.Segments, rec.Journal.Truncated,
			rec.Journal.Compacted, rec.Requeued, rec.FromStore, rec.Shed,
			rec.InterruptedLeases)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		return err
	case s := <-sigc:
		fmt.Printf("paccd: %v, draining (new submissions shed; accepted work runs to "+
			"completion; signal again to abort the drain)\n", s)
		drained := make(chan struct{})
		go func() { svc.Shutdown(); close(drained) }()
		select {
		case <-drained:
			fmt.Println("paccd: drained cleanly, all accepted work persisted")
		case s2 := <-sigc:
			fmt.Printf("paccd: %v again, aborting drain (pending work fails with typed "+
				"ShutdownError; completed results persist in the store)\n", s2)
			svc.Close()
			<-drained
		}
		srv.Close()
		return nil
	}
}

func cmdSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	var (
		storeDir = fs.String("store", "", "store directory (required; a temp dir is fine)")
		offered  = fs.Int("offered", 200, "submissions to offer (over capacity by design)")
		workers  = fs.Int("workers", 4, "worker pool size")
		kills    = fs.Int("kills", 6, "worker kills to inject")
		corrupt  = fs.Int("corrupt", 6, "store corruptions to inject")
		seed     = fs.Uint64("seed", 1, "chaos schedule seed")
		restart  = fs.Bool("restart", true, "kill -9 and restart the daemon mid-campaign")
		crashes  = fs.Int("crashes", 3, "daemon kills to inject at seeded durability boundaries")
		timeout  = fs.Duration("timeout", 3*time.Minute, "campaign deadline")
	)
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("soak: -store is required")
	}
	rep, err := sweep.Soak(sweep.SoakOptions{
		Dir: *storeDir, Seed: *seed, Offered: *offered, Workers: *workers,
		Kills: *kills, Corruptions: *corrupt, Restart: *restart, Crashes: *crashes,
		Timeout: *timeout,
		Log:     func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	fmt.Printf("soak: offered=%d unique=%d shed=%d kills=%d corruptions=%d evictions=%d "+
		"daemon-kills=%d crash-points=%v recovered=%d resubmit-executions=%d segments=%d dedupe=%.0f%%\n",
		rep.Offered, rep.UniqueKeys, rep.Shed, rep.Kills, rep.Corruptions,
		rep.StoreEvictions, rep.DaemonRestarts, rep.CrashPoints, rep.Recovered,
		rep.ResubmitExecutions, rep.LiveSegments, 100*rep.DedupeHitRate)
	if !rep.Ok() {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "soak: VIOLATION:", v)
		}
		return fmt.Errorf("soak: %d invariant violation(s)", len(rep.Violations))
	}
	fmt.Println("soak: all invariants held")
	return nil
}
