// Command powercoll regenerates the figures and tables of Kandalla et al.
// (ICPP 2010) from the pacc simulation.
//
// Usage:
//
//	powercoll -list                 # show available experiments
//	powercoll -exp fig7a            # run one experiment, print text
//	powercoll -exp all -scale 0.2   # run everything at reduced scale
//	powercoll -exp table1 -csv out/ # also write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pacc"
	"pacc/internal/report"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run, or 'all'")
		scale = flag.Float64("scale", 1.0, "experiment scale in (0,1]; 1 = paper fidelity")
		csv   = flag.String("csv", "", "directory to write CSV series/tables into")
		htmlP = flag.String("html", "", "write an HTML report (inline SVG charts) to this file")
		list  = flag.Bool("list", false, "list registered experiments and exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range pacc.Experiments() {
			fmt.Printf("  %-17s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, s := range pacc.Experiments() {
			ids = append(ids, s.ID)
		}
	} else {
		ids = []string{*exp}
	}

	failed := false
	var collected []*pacc.ExperimentResult
	for _, id := range ids {
		start := time.Now()
		res, err := pacc.RunExperiment(id, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powercoll: %s: %v\n", id, err)
			failed = true
			continue
		}
		res.Render(os.Stdout)
		fmt.Printf("\n(%s completed in %.1fs wall time)\n\n", id, time.Since(start).Seconds())
		collected = append(collected, res)
		if *csv != "" {
			if err := res.WriteCSV(*csv); err != nil {
				fmt.Fprintf(os.Stderr, "powercoll: writing CSV for %s: %v\n", id, err)
				failed = true
			}
		}
	}
	if *htmlP != "" && len(collected) > 0 {
		f, err := os.Create(*htmlP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "powercoll:", err)
			os.Exit(1)
		}
		title := fmt.Sprintf("pacc reproduction results (scale %.2f)", *scale)
		if err := report.WriteHTML(f, title, collected); err != nil {
			fmt.Fprintln(os.Stderr, "powercoll:", err)
			failed = true
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "powercoll:", err)
			failed = true
		}
		fmt.Printf("wrote HTML report to %s\n", *htmlP)
	}
	if failed {
		os.Exit(1)
	}
}
