// Command powercoll regenerates the figures and tables of Kandalla et al.
// (ICPP 2010) from the pacc simulation.
//
// Usage:
//
//	powercoll -list                 # show available experiments
//	powercoll -exp fig7a            # run one experiment, print text
//	powercoll -exp all -scale 0.2   # run everything at reduced scale
//	powercoll -exp table1 -csv out/ # also write CSV files
//	powercoll -trace t.json -metrics m.json -obs alltoall:256K:proposed
//	                                # capture an instrumented demo run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pacc"
	"pacc/internal/prof"
	"pacc/internal/report"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run, or 'all'")
		scale    = flag.Float64("scale", 1.0, "experiment scale in (0,1]; 1 = paper fidelity")
		csv      = flag.String("csv", "", "directory to write CSV series/tables into")
		htmlP    = flag.String("html", "", "write an HTML report (inline SVG charts) to this file")
		list     = flag.Bool("list", false, "list registered experiments and exit")
		traceP   = flag.String("trace", "", "write a merged Chrome trace of an instrumented demo run to this file")
		metricP  = flag.String("metrics", "", "write a metrics JSON snapshot of the demo run to this file")
		reportP  = flag.String("report", "", "write an analytics report (critical path, slack, energy attribution) of the demo run to this file")
		obsSpec  = flag.String("obs", "alltoall:256K:proposed", "demo run for -trace/-metrics as op:size:mode")
		faultP   = flag.String("fault", "", "deterministic fault-injection spec for the demo run, e.g. 'seed=7;msgloss=0.02;degrade=node0-up@0.3:200us+2ms'; crash-stop syntax: 'crash=RANK@TIME;detect=DUR'; data corruption: 'corrupt=PROB;terrfactor=N;memburst=RANK@PROB:START+DUR' (RANK may be *)")
		planP    = flag.String("plan", "", "communication plan for the demo run: a registered builder name, or 'auto' for cost-based selection")
		timeoutP = flag.Duration("timeout", 0, "wall-clock budget for the demo run; an exceeded deadline aborts the simulation cleanly (0 = none)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (at exit) to this file")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powercoll:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *traceP != "" || *metricP != "" || *reportP != "" {
		if err := captureObs(*obsSpec, *faultP, *planP, *traceP, *metricP, *reportP, *timeoutP); err != nil {
			fmt.Fprintln(os.Stderr, "powercoll:", err)
			os.Exit(1)
		}
		if *exp == "" {
			return
		}
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range pacc.Experiments() {
			fmt.Printf("  %-17s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, s := range pacc.Experiments() {
			ids = append(ids, s.ID)
		}
	} else {
		ids = []string{*exp}
	}

	failed := false
	var collected []*pacc.ExperimentResult
	for _, id := range ids {
		start := time.Now()
		res, err := pacc.RunExperiment(id, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powercoll: %s: %v\n", id, err)
			failed = true
			continue
		}
		res.Render(os.Stdout)
		fmt.Printf("\n(%s completed in %.1fs wall time)\n\n", id, time.Since(start).Seconds())
		collected = append(collected, res)
		if *csv != "" {
			if err := res.WriteCSV(*csv); err != nil {
				fmt.Fprintf(os.Stderr, "powercoll: writing CSV for %s: %v\n", id, err)
				failed = true
			}
		}
	}
	if *htmlP != "" && len(collected) > 0 {
		f, err := os.Create(*htmlP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "powercoll:", err)
			os.Exit(1)
		}
		title := fmt.Sprintf("pacc reproduction results (scale %.2f)", *scale)
		if err := report.WriteHTML(f, title, collected); err != nil {
			fmt.Fprintln(os.Stderr, "powercoll:", err)
			failed = true
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "powercoll:", err)
			failed = true
		}
		fmt.Printf("wrote HTML report to %s\n", *htmlP)
	}
	if failed {
		os.Exit(1)
	}
}

// obsOps maps demo-run operation names to collective calls on the paper's
// default testbed.
var obsOps = map[string]func(c *pacc.Comm, bytes int64, opt pacc.CollectiveOptions) error{
	"alltoall": pacc.Alltoall,
	"bcast": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.Bcast(c, 0, b, o)
	},
	"reduce": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.Reduce(c, 0, b, o)
	},
	"allgather":      pacc.Allgather,
	"allreduce":      pacc.Allreduce,
	"allreduce_topo": pacc.AllreduceTopoAware,
	"gather": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.Gather(c, 0, b, o)
	},
	"scatter": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.Scatter(c, 0, b, o)
	},
}

// captureObs runs one instrumented collective call on the default testbed
// (optionally under a fault-injection spec and a wall-clock timeout) and
// writes the merged trace and/or metrics snapshot.
func captureObs(spec, faultSpec, planName, tracePath, metricsPath, reportPath string, timeout time.Duration) error {
	op, bytes, mode, err := parseObsSpec(spec)
	if err != nil {
		return err
	}
	call := obsOps[op]
	cfg := pacc.DefaultConfig()
	if faultSpec != "" {
		fs, err := pacc.ParseFaultSpec(faultSpec)
		if err != nil {
			return err
		}
		cfg.Fault = fs
	}
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		return err
	}
	sess := pacc.AttachObs(w)
	if reportPath != "" {
		sess.EnableAnalytics()
	}
	var callErr error
	w.Launch(func(r *pacc.Rank) {
		opt := pacc.CollectiveOptions{Power: mode, Plan: planName}
		if err := call(pacc.CommWorld(r), bytes, opt); err != nil && callErr == nil {
			callErr = err
		}
	})
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if _, err := w.RunContext(ctx); err != nil {
		return err
	}
	if callErr != nil {
		return callErr
	}
	if tracePath != "" {
		if err := sess.WriteTraceFile(tracePath); err != nil {
			return err
		}
		fmt.Printf("wrote merged Chrome trace of %s to %s\n", spec, tracePath)
	}
	if metricsPath != "" {
		if err := sess.WriteMetricsFile(metricsPath); err != nil {
			return err
		}
		fmt.Printf("wrote metrics snapshot of %s to %s\n", spec, metricsPath)
	}
	if reportPath != "" {
		if err := sess.WriteReportFile(reportPath); err != nil {
			return err
		}
		fmt.Printf("wrote analytics report of %s to %s\n", spec, reportPath)
	}
	return nil
}

// parseObsSpec splits an op:size:mode demo-run spec, e.g.
// "alltoall:256K:proposed".
func parseObsSpec(spec string) (string, int64, pacc.PowerMode, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return "", 0, 0, fmt.Errorf("bad -obs spec %q (want op:size:mode)", spec)
	}
	op := parts[0]
	if _, ok := obsOps[op]; !ok {
		names := make([]string, 0, len(obsOps))
		for k := range obsOps {
			names = append(names, k)
		}
		sort.Strings(names)
		return "", 0, 0, fmt.Errorf("unknown -obs op %q (have: %s)", op, strings.Join(names, ", "))
	}
	bytes, err := parseSize(parts[1])
	if err != nil {
		return "", 0, 0, err
	}
	var mode pacc.PowerMode
	switch parts[2] {
	case "no-power", "default":
		mode = pacc.NoPower
	case "freq-scaling", "dvfs":
		mode = pacc.FreqScaling
	case "proposed", "power-aware":
		mode = pacc.Proposed
	default:
		return "", 0, 0, fmt.Errorf("unknown -obs power mode %q (no-power, freq-scaling, proposed)", parts[2])
	}
	return op, bytes, mode, nil
}

// parseSize parses sizes like "512", "256K", "1M".
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
