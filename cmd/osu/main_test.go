package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"pacc"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1024": 1024,
		"4K":   4096,
		"4k":   4096,
		"1M":   1 << 20,
		" 64K": 64 << 10,
		"0":    0,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-4K", "4G"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]pacc.PowerMode{
		"no-power":     pacc.NoPower,
		"default":      pacc.NoPower,
		"freq-scaling": pacc.FreqScaling,
		"dvfs":         pacc.FreqScaling,
		"proposed":     pacc.Proposed,
		"power-aware":  pacc.Proposed,
	}
	for in, want := range cases {
		got, err := parseMode(in)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseMode("turbo"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestOpNamesSortedAndComplete(t *testing.T) {
	names := opNames()
	for _, want := range []string{"alltoall", "bcast", "barrier", "latency", "bw", "reduce"} {
		if !strings.Contains(names, want) {
			t.Errorf("opNames() missing %q: %s", want, names)
		}
	}
	parts := strings.Split(names, ", ")
	for i := 1; i < len(parts); i++ {
		if parts[i] < parts[i-1] {
			t.Fatalf("opNames not sorted: %s", names)
		}
	}
}

// TestMeasureSmoke exercises the measurement loop end to end at a small
// size.
func TestMeasureSmoke(t *testing.T) {
	lat, watts, _, err := measure(context.Background(), pacc.DefaultConfig(), ops["bcast"], 4096,
		16, 8, pacc.NoPower, pacc.CollectiveOptions{}, "polling", 2, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || watts <= 0 {
		t.Fatalf("degenerate measurement: %v us, %v W", lat, watts)
	}
	if _, _, _, err := measure(context.Background(), pacc.DefaultConfig(), ops["bcast"], 4096,
		15, 8, pacc.NoPower, pacc.CollectiveOptions{}, "polling", 1, false, false, false); err == nil {
		t.Error("procs not multiple of ppn accepted")
	}
	if _, _, _, err := measure(context.Background(), pacc.DefaultConfig(), ops["bcast"], 4096,
		16, 8, pacc.NoPower, pacc.CollectiveOptions{}, "warp", 1, false, false, false); err == nil {
		t.Error("bogus progression accepted")
	}
}

// TestMeasureHonorsTimeout: an already-expired context aborts the run
// with the typed cancellation error instead of burning CPU.
func TestMeasureHonorsTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := measure(ctx, pacc.DefaultConfig(), ops["bcast"], 4096,
		16, 8, pacc.NoPower, pacc.CollectiveOptions{}, "polling", 2, false, false, false)
	var ce *pacc.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *pacc.CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err chain %v does not reach context.Canceled", err)
	}
}
