// Command osu runs OSU-microbenchmark-style latency/power sweeps of the
// simulated collectives, the measurement loop behind the paper's
// Figures 6-8.
//
// Usage:
//
//	osu -op alltoall -procs 64 -ppn 8 -mode proposed
//	osu -op bcast -sizes 16K,256K,1M -iters 5 -progression blocking
//	osu -op alltoall -size 256K -trace timeline.json   # Chrome trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"pacc"
	"pacc/internal/prof"
)

// bwWindow is the number of in-flight messages in the bw test.
const bwWindow = 64

var ops = map[string]func(c *pacc.Comm, bytes int64, opt pacc.CollectiveOptions) error{
	"alltoall": pacc.AlltoallPairwise,
	"bruck":    pacc.AlltoallBruck,
	"bcast": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.Bcast(c, 0, b, o)
	},
	"bcast_binomial": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.BcastBinomial(c, 0, b, o)
	},
	"reduce": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.Reduce(c, 0, b, o)
	},
	"allgather":      pacc.Allgather,
	"allgather_ring": pacc.AllgatherRing,
	"allgather_rd":   pacc.AllgatherRD,
	"allreduce":      pacc.Allreduce,
	"allreduce_rd":   pacc.AllreduceRD,
	"allreduce_topo": pacc.AllreduceTopoAware,
	// allreduce_ft is the ULFM-style fault-tolerant allreduce: under a
	// crash fault spec the survivors revoke, agree, shrink and finish on
	// the remaining ranks.
	"allreduce_ft": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		_, _, err := pacc.AllreduceSumFT(c, b, float64(c.Owner().ID()+1), o)
		return err
	},
	"gather": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.Gather(c, 0, b, o)
	},
	"scatter": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		return pacc.Scatter(c, 0, b, o)
	},
	"barrier": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		start := c.Owner().Now()
		pacc.Barrier(c)
		o.Trace.Add("total", c.Owner().Now().Sub(start))
		return nil
	},
	// bw is the osu_bw windowed streaming bandwidth test: rank 0 keeps
	// bwWindow sends in flight toward a remote rank, which acknowledges
	// the window with a zero-byte message.
	"bw": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		me := c.Rank()
		peer := c.Size() / 2
		tag := c.TagBlock()
		switch me {
		case 0:
			start := c.Owner().Now()
			reqs := make([]*pacc.Request, bwWindow)
			for i := range reqs {
				reqs[i] = c.Isend(peer, b, tag+i)
			}
			pacc.WaitAll(reqs...)
			c.Recv(peer, 0, tag+bwWindow)
			o.Trace.Add("total", c.Owner().Now().Sub(start))
		case peer:
			reqs := make([]*pacc.Request, bwWindow)
			for i := range reqs {
				reqs[i] = c.Irecv(0, b, tag+i)
			}
			pacc.WaitAll(reqs...)
			c.Send(0, 0, tag+bwWindow)
		}
		return nil
	},
	// latency is the osu_latency ping-pong between rank 0 and a rank on
	// another node; the reported figure is the one-way latency (half the
	// round trip).
	"latency": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		me := c.Rank()
		peer := c.Size() / 2
		tag := c.TagBlock()
		switch me {
		case 0:
			start := c.Owner().Now()
			c.Send(peer, b, tag)
			c.Recv(peer, b, tag+1)
			o.Trace.Add("total", (c.Owner().Now().Sub(start))/2)
		case peer:
			c.Recv(0, b, tag)
			c.Send(0, b, tag+1)
		}
		return nil
	},
}

// verifiedOps swaps an op for its self-verifying variant under -verify:
// the ABFT-checked collectives carry a checksum shadow through the same
// message schedule, and the loop compares every returned sum against the
// expected value — a silently wrong result fails the benchmark run.
var verifiedOps = map[string]func(c *pacc.Comm, bytes int64, opt pacc.CollectiveOptions) error{
	"allreduce_topo": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		got, err := pacc.AllreduceSumChecked(c, b, float64(c.Owner().ID()+1), o)
		if err != nil {
			return err
		}
		if want := groupSum(c); got != want {
			return fmt.Errorf("verify: allreduce_topo sum %g, want %g", got, want)
		}
		return nil
	},
	"allreduce_ft": func(c *pacc.Comm, b int64, o pacc.CollectiveOptions) error {
		got, fc, err := pacc.AllreduceSumFTChecked(c, b, float64(c.Owner().ID()+1), o)
		if err != nil {
			return err
		}
		if want := groupSum(fc); got != want {
			return fmt.Errorf("verify: allreduce_ft sum %g, want %g over the final group", got, want)
		}
		return nil
	},
}

// planVerifyOps are the plan-backed ops where -verify appends checksum
// verification steps (OpVerify) to the built schedule instead of
// swapping the entry point.
var planVerifyOps = map[string]bool{
	"allreduce":    true,
	"allreduce_rd": true,
}

// groupSum is the expected checked-allreduce result over c's membership:
// every member contributes its global rank id + 1.
func groupSum(c *pacc.Comm) float64 {
	want := 0.0
	for i := 0; i < c.Size(); i++ {
		want += float64(c.Global(i) + 1)
	}
	return want
}

func verifyOpNames() string {
	names := make([]string, 0, len(verifiedOps)+len(planVerifyOps))
	for k := range verifiedOps {
		names = append(names, k)
	}
	for k := range planVerifyOps {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func opNames() string {
	names := make([]string, 0, len(ops))
	for k := range ops {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func parseMode(s string) (pacc.PowerMode, error) {
	switch s {
	case "no-power", "default":
		return pacc.NoPower, nil
	case "freq-scaling", "dvfs":
		return pacc.FreqScaling, nil
	case "proposed", "power-aware":
		return pacc.Proposed, nil
	default:
		return 0, fmt.Errorf("unknown power mode %q (no-power, freq-scaling, proposed)", s)
	}
}

func main() {
	var (
		op          = flag.String("op", "alltoall", "collective: "+opNames())
		procs       = flag.Int("procs", 64, "number of ranks")
		ppn         = flag.Int("ppn", 8, "ranks per node")
		modeStr     = flag.String("mode", "no-power", "power scheme: no-power, freq-scaling, proposed")
		sizesStr    = flag.String("sizes", "1K,4K,16K,64K,256K,1M", "comma-separated message sizes")
		oneSize     = flag.String("size", "", "single message size (overrides -sizes)")
		iters       = flag.Int("iters", 3, "timed iterations per size")
		progression = flag.String("progression", "polling", "polling or blocking")
		traceOut    = flag.String("trace", "", "write a merged Chrome trace (power + MPI + network + collective) of the last size's run to this file")
		metricsOut  = flag.String("metrics", "", "write a metrics JSON snapshot of the last size's run to this file")
		reportOut   = flag.String("report", "", "write an analytics report (critical path, per-rank slack, energy attribution) of the last size's run to this file; analyze further with cmd/paccprof")
		configPath  = flag.String("config", "", "load the base cluster configuration from a JSON file")
		dumpConfig  = flag.String("dump-config", "", "write the default configuration to this file and exit")
		faultSpec   = flag.String("fault", "", "deterministic fault-injection spec, e.g. 'seed=7;msgloss=0.02;degrade=node0-up@0.3:200us+2ms;straggler=1@1.5', 'crash=5@200us;detect=100us' (crash-stop; pair with -op allreduce_ft), 'seed=7;corrupt=0.05;terrfactor=2;memburst=3@0.2:100us+1ms' (in-flight bit flips are ICRC-rejected and retransmitted; memory bursts need -verify to be caught), or 'slow=3@8x:10ms+50ms;stickfail=0.3' (fail-slow: windowed gray degradation and lost power-transition writes; arms the fail-slow detector, pair with -op allreduce_ft for demotion)")
		planName    = flag.String("plan", "", "communication plan: a registered builder name, or 'auto' for cost-based selection")
		planObj     = flag.String("plan-objective", "latency", "objective for -plan auto: latency or energy")
		verify      = flag.Bool("verify", false, "self-verify collective data every iteration: plan-backed allreduces append checksum verification steps, allreduce_topo/allreduce_ft run their ABFT-checked variants and compare the sum against the expected value")
		detect      = flag.Bool("detect", false, "arm fail-slow detection (per-rank compute-lag scoreboards and suspect censuses) even without a slow=/stickfail= fault clause; costs zero simulated time")
		timeout     = flag.Duration("timeout", 0, "wall-clock budget for the whole sweep; an exceeded deadline aborts the running simulation cleanly (0 = none)")
		interruptEv = flag.Int("interrupt-every", 0, "poll for -timeout cancellation every N executed events (0 = engine default, 256); lower means faster aborts at the cost of per-event overhead")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile (after the sweep) to this file")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *dumpConfig != "" {
		if err := pacc.SaveConfig(*dumpConfig, pacc.DefaultConfig()); err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote default configuration to %s\n", *dumpConfig)
		return
	}
	baseCfg := pacc.DefaultConfig()
	if *configPath != "" {
		var err error
		baseCfg, err = pacc.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(1)
		}
	}
	if *faultSpec != "" {
		spec, err := pacc.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(2)
		}
		baseCfg.Fault = spec
	}
	if *detect {
		baseCfg.FailSlowDetect = true
	}
	if *interruptEv != 0 {
		baseCfg.InterruptEvery = *interruptEv
	}

	call, ok := ops[*op]
	if !ok {
		fmt.Fprintf(os.Stderr, "osu: unknown op %q (have: %s)\n", *op, opNames())
		os.Exit(2)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		os.Exit(2)
	}
	opt := pacc.CollectiveOptions{Plan: *planName}
	if *verify {
		switch {
		case verifiedOps[*op] != nil:
			call = verifiedOps[*op]
		case planVerifyOps[*op]:
			opt.Verify = true
		default:
			fmt.Fprintf(os.Stderr, "osu: -verify is not supported for op %q (have: %s)\n", *op, verifyOpNames())
			os.Exit(2)
		}
	}
	switch *planObj {
	case "latency":
		opt.PlanObjective = pacc.SelectByLatency
	case "energy":
		opt.PlanObjective = pacc.SelectByEnergy
	default:
		fmt.Fprintf(os.Stderr, "osu: unknown -plan-objective %q (latency, energy)\n", *planObj)
		os.Exit(2)
	}
	var sizes []int64
	src := *sizesStr
	if *oneSize != "" {
		src = *oneSize
	}
	for _, tok := range strings.Split(src, ",") {
		v, err := parseSize(tok)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}
	if *op == "barrier" {
		sizes = []int64{0}
	}

	fmt.Printf("# OSU-style %s benchmark (simulated)\n", *op)
	fmt.Printf("# %d ranks, %d per node, %s progression, %s scheme, %d iterations\n",
		*procs, *ppn, *progression, mode, *iters)
	if baseCfg.Fault != nil {
		fmt.Printf("# fault injection: %s\n", baseCfg.Fault.String())
	}
	if *verify {
		fmt.Printf("# data verification: on\n")
	}
	if *detect {
		fmt.Printf("# fail-slow detection: armed\n")
	}
	fmt.Printf("%-12s %14s %14s\n", "size(B)", "latency(us)", "cluster(W)")

	wantObs := *traceOut != "" || *metricsOut != "" || *reportOut != ""
	// A crash-stop spec kills ranks permanently, and the plain barrier has
	// no failure path: run the iterations back-to-back instead (the
	// resilient collective synchronizes the survivors itself).
	skipBarrier := baseCfg.Fault != nil && len(baseCfg.Fault.Crashes) > 0
	wantReport := *reportOut != ""
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	for _, size := range sizes {
		lat, watts, sess, err := measure(ctx, baseCfg, call, size, *procs, *ppn, mode, opt, *progression, *iters, wantObs, wantReport, skipBarrier)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "osu: sweep exceeded its -timeout of %v at size %d: %v\n", *timeout, size, err)
			} else {
				fmt.Fprintln(os.Stderr, "osu:", err)
			}
			os.Exit(1)
		}
		if *op == "bw" && lat > 0 {
			mbps := float64(bwWindow) * float64(size) / (lat / 1e6) / 1e6
			fmt.Printf("%-12d %14.2f %14.0f   %10.1f MB/s\n", size, lat, watts, mbps)
		} else {
			fmt.Printf("%-12d %14.2f %14.0f\n", size, lat, watts)
		}
		if wantObs && size == sizes[len(sizes)-1] {
			if *traceOut != "" {
				if err := sess.WriteTraceFile(*traceOut); err != nil {
					fmt.Fprintln(os.Stderr, "osu:", err)
					os.Exit(1)
				}
				fmt.Printf("# wrote merged Chrome trace to %s\n", *traceOut)
			}
			if *metricsOut != "" {
				if err := sess.WriteMetricsFile(*metricsOut); err != nil {
					fmt.Fprintln(os.Stderr, "osu:", err)
					os.Exit(1)
				}
				fmt.Printf("# wrote metrics snapshot to %s\n", *metricsOut)
			}
			if *reportOut != "" {
				if err := sess.WriteReportFile(*reportOut); err != nil {
					fmt.Fprintln(os.Stderr, "osu:", err)
					os.Exit(1)
				}
				fmt.Printf("# wrote analytics report to %s\n", *reportOut)
			}
		}
	}
}

// measure runs one barrier-separated OSU loop on a fresh world and
// returns the mean per-call latency (µs, from rank 0's trace) and mean
// cluster power over the whole run. ctx bounds the simulation: a
// cancellation or deadline aborts it with a typed pacc.CanceledError.
func measure(ctx context.Context, cfg pacc.Config, call func(*pacc.Comm, int64, pacc.CollectiveOptions) error, size int64,
	procs, ppn int, mode pacc.PowerMode, base pacc.CollectiveOptions, progression string, iters int,
	wantObs, wantReport, skipBarrier bool) (float64, float64, *pacc.ObsSession, error) {

	cfg.NProcs = procs
	cfg.PPN = ppn
	if procs%ppn != 0 {
		return 0, 0, nil, fmt.Errorf("procs %d not a multiple of ppn %d", procs, ppn)
	}
	cfg.Topo.Nodes = procs / ppn
	switch progression {
	case "polling":
		cfg.Mode = pacc.Polling
	case "blocking":
		cfg.Mode = pacc.Blocking
	default:
		return 0, 0, nil, fmt.Errorf("unknown progression %q", progression)
	}
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	var sess *pacc.ObsSession
	if wantObs {
		sess = pacc.AttachObs(w)
		if wantReport {
			sess.EnableAnalytics()
		}
	}
	var tr0 *pacc.Trace
	var callErr error
	w.Launch(func(r *pacc.Rank) {
		c := pacc.CommWorld(r)
		tr := pacc.NewTrace()
		if r.ID() == 0 {
			tr0 = tr
		}
		warm := base
		warm.Power = mode
		if err := call(c, size, warm); err != nil { // warm-up
			if callErr == nil {
				callErr = err
			}
			return
		}
		timed := warm
		timed.Trace = tr
		for i := 0; i < iters; i++ {
			if !skipBarrier {
				pacc.Barrier(c)
			}
			if err := call(c, size, timed); err != nil && callErr == nil {
				callErr = err
			}
		}
	})
	elapsed, err := w.RunContext(ctx)
	if err != nil {
		return 0, 0, nil, err
	}
	if callErr != nil {
		return 0, 0, nil, callErr
	}
	lat := tr0.Phase("total").Micros() / float64(iters)
	watts := w.Station().EnergyJoules() / elapsed.Seconds()
	return lat, watts, sess, nil
}
