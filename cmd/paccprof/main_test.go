package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pacc"
	"pacc/internal/analyze"
	"pacc/internal/simtime"
)

// runSession produces one small instrumented run and returns its session.
func runSession(t *testing.T) *pacc.ObsSession {
	t.Helper()
	cfg := pacc.DefaultConfig()
	cfg.NProcs = 8
	cfg.PPN = 1
	w, err := pacc.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := pacc.AttachObs(w)
	w.Launch(func(r *pacc.Rank) {
		r.Compute(simtime.Duration(r.ID()) * 10 * simtime.Microsecond)
		if err := pacc.AllgatherRing(pacc.CommWorld(r), 64<<10, pacc.CollectiveOptions{}); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestCheckReport pins the -check gate on a real run's report and on
// degenerate reports.
func TestCheckReport(t *testing.T) {
	rep := runSession(t).Report()
	if err := checkReport(rep); err != nil {
		t.Fatalf("check of a real run failed: %v", err)
	}
	if err := checkReport(&analyze.Report{Schema: "bogus"}); err == nil {
		t.Error("bad schema passed the check")
	}
	empty := &analyze.Report{Schema: analyze.SchemaVersion, Ranks: 4, SpanUs: 100}
	if err := checkReport(empty); err == nil {
		t.Error("zero-slack report passed the check")
	}
}

// TestReadReportRoundTrip checks the file round trip the diff command
// relies on, including rejection of non-report JSON.
func TestReadReportRoundTrip(t *testing.T) {
	sess := runSession(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := sess.WriteReportFile(path); err != nil {
		t.Fatal(err)
	}
	rep, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := sess.WriteReport(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.Write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("report changed across the file round trip")
	}

	bogus := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(bogus, []byte(`[{"name":"x","ph":"X"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(bogus); err == nil {
		t.Error("non-report JSON accepted by readReport")
	}
}
