// Command paccprof is the post-run analytics CLI: it turns exported
// Chrome traces into critical-path / slack / energy reports and diffs
// two reports as a structured performance-regression gate.
//
// Usage:
//
//	paccprof analyze trace.json                      # report JSON on stdout
//	paccprof analyze -o report.json -check trace.json
//	paccprof analyze -annotate colored.json trace.json
//	paccprof diff base.json new.json                 # gate with default thresholds
//	paccprof diff -mean-pct 3 -p99-pct 8 -energy-pct 5 base.json new.json
//
// Exit codes: 0 clean, 1 regression or failed -check, 2 usage/input
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pacc/internal/analyze"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "analyze":
		runAnalyze(os.Args[2:])
	case "diff":
		runDiff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: paccprof analyze [flags] trace.json | paccprof diff [flags] base.json new.json")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "paccprof:", err)
	os.Exit(2)
}

func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	var (
		out       = fs.String("o", "", "write the report to this file (default stdout)")
		annotate  = fs.String("annotate", "", "also write the trace re-colored by critical-path membership and annotated with slack to this file")
		check     = fs.Bool("check", false, "validate the analysis (ranks seen, schema set, nonzero slack recorded); exit 1 on failure")
		perCall   = fs.Bool("per-call", false, "include per-call detail records in the report")
		odvfs     = fs.Float64("odvfs-us", 0, "one-way DVFS switch latency in µs for the harvestable-slack filter (0 = default model)")
		othrottle = fs.Float64("othrottle-us", 0, "one-way throttle switch latency in µs for the harvestable-slack filter (0 = default model)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	m, err := analyze.ParseChromeTrace(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	a := m.Analyze(analyze.Options{ODVFSUs: *odvfs, OThrottleUs: *othrottle, PerCall: *perCall})
	rep := a.Report

	var w io.Writer = os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer of.Close()
		w = of
	}
	if err := rep.Write(w); err != nil {
		fail(err)
	}
	if *annotate != "" {
		af, err := os.Create(*annotate)
		if err != nil {
			fail(err)
		}
		if err := a.WriteAnnotatedTrace(af); err != nil {
			af.Close()
			fail(err)
		}
		if err := af.Close(); err != nil {
			fail(err)
		}
	}
	if *check {
		if err := checkReport(rep); err != nil {
			fmt.Fprintln(os.Stderr, "paccprof: check failed:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "paccprof: check passed")
	}
}

// checkReport validates the invariants the CI soak gates assert: a
// well-formed schema, observed ranks, and recorded (nonzero) slack —
// a trace of a real run always has some rank waiting somewhere.
func checkReport(r *analyze.Report) error {
	if r.Schema != analyze.SchemaVersion {
		return fmt.Errorf("schema %q, want %q", r.Schema, analyze.SchemaVersion)
	}
	if r.Ranks <= 0 {
		return fmt.Errorf("no ranks observed")
	}
	if r.SpanUs <= 0 {
		return fmt.Errorf("empty trace span")
	}
	total := 0.0
	for _, rs := range r.RankSlack {
		total += rs.SlackUs
	}
	if total <= 0 {
		return fmt.Errorf("zero total slack across %d ranks", r.Ranks)
	}
	return nil
}

func runDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	def := analyze.DefaultThresholds()
	var (
		meanPct   = fs.Float64("mean-pct", def.MeanPct, "max allowed per-collective mean-latency growth in % (0 disables)")
		p99Pct    = fs.Float64("p99-pct", def.P99Pct, "max allowed per-collective p99-latency growth in % (0 disables)")
		energyPct = fs.Float64("energy-pct", def.EnergyPct, "max allowed total-energy growth in % (0 disables)")
	)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	base, err := readReport(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	next, err := readReport(fs.Arg(1))
	if err != nil {
		fail(err)
	}
	d := analyze.Diff(base, next, analyze.Thresholds{
		MeanPct: *meanPct, P99Pct: *p99Pct, EnergyPct: *energyPct,
	})
	if err := d.Write(os.Stdout); err != nil {
		fail(err)
	}
	if d.Regressions > 0 {
		os.Exit(1)
	}
}

func readReport(path string) (*analyze.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := analyze.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != analyze.SchemaVersion {
		return nil, fmt.Errorf("%s: schema %q is not a paccprof report (want %q)", path, r.Schema, analyze.SchemaVersion)
	}
	return r, nil
}
