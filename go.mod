module pacc

go 1.22
